//! Memory-access extraction.
//!
//! Walks statements/expressions and produces a flat list of variable
//! accesses — each a read or write of a scalar, an array element (with
//! affine subscripts), or a pointer dereference — carrying the span
//! needed for DRB-ML-style `name@line:col:R/W` labels.

use crate::affine::Affine;
use minic::ast::*;
use minic::printer::print_expr;
use minic::span::Span;
use serde::{Deserialize, Serialize};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// The location's value is read.
    Read,
    /// The location is written.
    Write,
}

impl AccessKind {
    /// DRB-ML operation letter (`"r"` / `"w"`).
    pub fn letter(&self) -> &'static str {
        match self {
            AccessKind::Read => "r",
            AccessKind::Write => "w",
        }
    }

    /// Whether `self` and `other` conflict (at least one write).
    pub fn conflicts(&self, other: &AccessKind) -> bool {
        matches!(self, AccessKind::Write) || matches!(other, AccessKind::Write)
    }
}

/// One memory access.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Access {
    /// Root variable name (`a[i+1]` → `a`, `*p` → `p`).
    pub var: String,
    /// Read or write.
    pub kind: AccessKind,
    /// Affine forms of the subscripts, outermost first; empty for scalars.
    pub subscripts: Vec<Affine>,
    /// Pointer-dereference depth at the access site (`*p` → 1).
    pub deref: u8,
    /// Source text of the whole lvalue (`a[i+1]`).
    pub text: String,
    /// Location of the access (the lvalue expression).
    pub span: Span,
}

impl Access {
    /// Whether this access targets an array element.
    pub fn is_array(&self) -> bool {
        !self.subscripts.is_empty()
    }

    /// Whether any subscript is opaque (non-affine).
    pub fn has_opaque_subscript(&self) -> bool {
        self.subscripts.iter().any(|s| s.opaque)
    }

    /// DRB-style label `a[i]@14:5:W`.
    pub fn label(&self) -> String {
        format!(
            "{}@{}:{}:{}",
            self.text,
            self.span.line(),
            self.span.col(),
            self.kind.letter().to_uppercase()
        )
    }
}

/// Collect all accesses in a statement subtree, in evaluation order.
pub fn accesses_of_stmt(s: &Stmt) -> Vec<Access> {
    let mut c = Collector::default();
    c.stmt(s);
    c.out
}

/// Collect all accesses in an expression.
pub fn accesses_of_expr(e: &Expr) -> Vec<Access> {
    let mut c = Collector::default();
    c.expr(e, AccessKind::Read);
    c.out
}

/// Collect accesses in a whole block.
pub fn accesses_of_block(b: &Block) -> Vec<Access> {
    let mut c = Collector::default();
    for s in &b.stmts {
        c.stmt(s);
    }
    c.out
}

#[derive(Default)]
struct Collector {
    out: Vec<Access>,
}

impl Collector {
    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(d) => {
                for v in &d.vars {
                    for dim in v.ty.dims.iter().flatten() {
                        self.expr(dim, AccessKind::Read);
                    }
                    match &v.init {
                        Some(Init::Expr(e)) => {
                            self.expr(e, AccessKind::Read);
                            // The declared variable itself is written, but a
                            // fresh local can never race with other accesses
                            // to the same (new) storage in its declaration;
                            // we still record it for completeness.
                            self.out.push(Access {
                                var: v.name.clone(),
                                kind: AccessKind::Write,
                                subscripts: Vec::new(),
                                deref: 0,
                                text: v.name.clone(),
                                span: v.span,
                            });
                        }
                        Some(Init::List(es)) => {
                            for e in es {
                                self.expr(e, AccessKind::Read);
                            }
                        }
                        None => {}
                    }
                }
            }
            Stmt::Expr(e) => self.expr(e, AccessKind::Read),
            Stmt::Empty(_) | Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::Block(b) => {
                for s in &b.stmts {
                    self.stmt(s);
                }
            }
            Stmt::If { cond, then, els, .. } => {
                self.expr(cond, AccessKind::Read);
                self.stmt(then);
                if let Some(e) = els {
                    self.stmt(e);
                }
            }
            Stmt::For(f) => {
                match &f.init {
                    ForInit::Empty => {}
                    ForInit::Decl(d) => self.stmt(&Stmt::Decl(d.clone())),
                    ForInit::Expr(e) => self.expr(e, AccessKind::Read),
                }
                if let Some(c) = &f.cond {
                    self.expr(c, AccessKind::Read);
                }
                if let Some(st) = &f.step {
                    self.expr(st, AccessKind::Read);
                }
                self.stmt(&f.body);
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond, AccessKind::Read);
                self.stmt(body);
            }
            Stmt::DoWhile { body, cond, .. } => {
                self.stmt(body);
                self.expr(cond, AccessKind::Read);
            }
            Stmt::Return(Some(e), _) => self.expr(e, AccessKind::Read),
            Stmt::Return(None, _) => {}
            Stmt::Omp { body, .. } => {
                if let Some(b) = body {
                    self.stmt(b);
                }
            }
        }
    }

    fn lvalue(&mut self, e: &Expr, kind: AccessKind) {
        match e {
            Expr::Ident { name, span } => self.out.push(Access {
                var: name.clone(),
                kind,
                subscripts: Vec::new(),
                deref: 0,
                text: name.clone(),
                span: *span,
            }),
            Expr::Index { .. } => {
                // Unwind nested Index to get base + subscript list.
                let mut subs_rev = Vec::new();
                let mut cur = e;
                while let Expr::Index { base, index, .. } = cur {
                    subs_rev.push(index.as_ref());
                    cur = base;
                }
                // Subscript expressions themselves are reads.
                for idx in subs_rev.iter().rev() {
                    self.expr(idx, AccessKind::Read);
                }
                if let Expr::Ident { name, .. } = cur {
                    let subscripts =
                        subs_rev.iter().rev().map(|i| Affine::from_expr(i)).collect();
                    self.out.push(Access {
                        var: name.clone(),
                        kind,
                        subscripts,
                        deref: 0,
                        text: print_expr(e),
                        span: e.span(),
                    });
                } else {
                    // Exotic base (call result, deref); record the base reads.
                    self.expr(cur, AccessKind::Read);
                }
            }
            Expr::Unary { op: UnOp::Deref, expr, span } => {
                // `*p = …` writes through p: the pointer value is read, the
                // pointee (modelled as `p` with deref=1) has `kind`.
                if let Some(root) = expr.root_var() {
                    self.out.push(Access {
                        var: root.to_string(),
                        kind,
                        subscripts: Vec::new(),
                        deref: 1,
                        text: print_expr(e),
                        span: *span,
                    });
                }
                self.expr(expr, AccessKind::Read);
            }
            Expr::Cast { expr, .. } => self.lvalue(expr, kind),
            // Anything else used as an lvalue: treat subexpressions as reads.
            other => self.expr(other, AccessKind::Read),
        }
    }

    fn expr(&mut self, e: &Expr, kind: AccessKind) {
        match e {
            Expr::IntLit { .. }
            | Expr::FloatLit { .. }
            | Expr::StrLit { .. }
            | Expr::CharLit { .. } => {}
            Expr::Ident { .. } | Expr::Index { .. } => self.lvalue(e, kind),
            Expr::Call { callee, args, .. } => {
                for a in args {
                    // `&x` arguments may be written by the callee; handled
                    // conservatively by racecheck, recorded as reads here
                    // except for the OpenMP lock API, which is sync-only.
                    if callee.starts_with("omp_") {
                        continue;
                    }
                    self.expr(a, AccessKind::Read);
                }
            }
            Expr::Unary { op: UnOp::Deref, .. } => self.lvalue(e, kind),
            Expr::Unary { op: UnOp::AddrOf, expr, .. } => {
                // Taking an address is not itself an access.
                let _ = expr;
            }
            Expr::Unary { expr, .. } => self.expr(expr, AccessKind::Read),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs, AccessKind::Read);
                self.expr(rhs, AccessKind::Read);
            }
            Expr::Assign { op, lhs, rhs, .. } => {
                self.expr(rhs, AccessKind::Read);
                if op.bin_op().is_some() {
                    // Compound assignment reads then writes the target.
                    self.lvalue(lhs, AccessKind::Read);
                }
                self.lvalue(lhs, AccessKind::Write);
            }
            Expr::IncDec { expr, .. } => {
                self.lvalue(expr, AccessKind::Read);
                self.lvalue(expr, AccessKind::Write);
            }
            Expr::Cond { cond, then, els, .. } => {
                self.expr(cond, AccessKind::Read);
                self.expr(then, AccessKind::Read);
                self.expr(els, AccessKind::Read);
            }
            Expr::Cast { expr, .. } => self.expr(expr, kind),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parser::parse;

    fn body_accesses(src: &str) -> Vec<Access> {
        let unit = parse(src).unwrap();
        let Item::Func(f) = &unit.items[0] else { panic!("no function") };
        accesses_of_block(&f.body)
    }

    #[test]
    fn simple_assignment() {
        let a = body_accesses("void f(int x, int y) { x = y; }");
        assert_eq!(a.len(), 2);
        assert_eq!((a[0].var.as_str(), a[0].kind), ("y", AccessKind::Read));
        assert_eq!((a[1].var.as_str(), a[1].kind), ("x", AccessKind::Write));
    }

    #[test]
    fn compound_assignment_reads_then_writes() {
        let a = body_accesses("void f(int x) { x += 1; }");
        let kinds: Vec<_> = a.iter().map(|a| a.kind).collect();
        assert_eq!(kinds, vec![AccessKind::Read, AccessKind::Write]);
    }

    #[test]
    fn array_access_with_affine_subscript() {
        let a = body_accesses("void f(int* a, int i) { a[i] = a[i+1]; }");
        let w = a.iter().find(|x| x.kind == AccessKind::Write).unwrap();
        assert_eq!(w.var, "a");
        assert_eq!(w.subscripts.len(), 1);
        assert_eq!(w.subscripts[0].coeff("i"), 1);
        let r = a.iter().find(|x| x.kind == AccessKind::Read && x.var == "a").unwrap();
        assert_eq!(r.subscripts[0].constant, 1);
        assert_eq!(r.text, "a[i + 1]");
    }

    #[test]
    fn subscript_index_vars_are_reads() {
        let a = body_accesses("void f(int* a, int i) { a[i] = 0; }");
        assert!(a.iter().any(|x| x.var == "i" && x.kind == AccessKind::Read));
    }

    #[test]
    fn incdec_is_read_write() {
        let a = body_accesses("void f(int x) { x++; }");
        assert_eq!(a.len(), 2);
        assert!(a[0].kind == AccessKind::Read && a[1].kind == AccessKind::Write);
    }

    #[test]
    fn two_dimensional() {
        let a = body_accesses("void f(int i, int j) { double b[10][10]; b[i][j] = b[j][i]; }");
        let w = a.iter().find(|x| x.kind == AccessKind::Write && x.var == "b").unwrap();
        assert_eq!(w.subscripts.len(), 2);
        assert_eq!(w.subscripts[0].coeff("i"), 1);
        assert_eq!(w.subscripts[1].coeff("j"), 1);
    }

    #[test]
    fn deref_write() {
        let a = body_accesses("void f(int* p) { *p = 3; }");
        let w = a.iter().find(|x| x.kind == AccessKind::Write).unwrap();
        assert_eq!(w.var, "p");
        assert_eq!(w.deref, 1);
    }

    #[test]
    fn omp_lock_calls_are_not_accesses() {
        let a = body_accesses("void f(int* l) { omp_set_lock(l); }");
        assert!(a.is_empty(), "{a:?}");
    }

    #[test]
    fn label_format_matches_drb() {
        let a = body_accesses("void f(int* a, int i) {\n  a[i] = a[i + 1];\n}");
        let r = a.iter().find(|x| x.var == "a" && x.kind == AccessKind::Read).unwrap();
        assert_eq!(r.label(), format!("a[i + 1]@{}:{}:R", r.span.line(), r.span.col()));
    }

    #[test]
    fn opaque_subscript_flagged() {
        let a = body_accesses("void f(int* a, int* idx, int i) { a[idx[i]] = 1; }");
        let w = a.iter().find(|x| x.var == "a" && x.kind == AccessKind::Write).unwrap();
        assert!(w.has_opaque_subscript());
    }
}
