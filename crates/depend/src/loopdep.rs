//! Loop-level dependence analysis.
//!
//! Extracts the induction variable and bounds of a `for` loop, collects
//! the body's memory accesses, and classifies every conflicting pair as
//! a true/anti/output dependence — loop-carried or not. This is the
//! engine behind both the static race detector and the surrogate LLM's
//! "dependence analysis" feature channel (prompt strategy p2/p3 in the
//! paper instructs models to do exactly this analysis).

use crate::access::{Access, AccessKind};
use crate::affine::Affine;
use crate::dtest::{subscripts_test, DepResult, LoopBounds};
use minic::ast::{BinOp, Expr, ForInit, ForStmt, Stmt, UnOp};
use serde::{Deserialize, Serialize};

/// Dependence classification (by access kinds and iteration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Write then read (flow / RAW).
    True,
    /// Read then write (WAR).
    Anti,
    /// Write then write (WAW).
    Output,
}

impl DepKind {
    /// Classify from the two access kinds in source order.
    pub fn classify(first: AccessKind, second: AccessKind) -> Option<DepKind> {
        match (first, second) {
            (AccessKind::Write, AccessKind::Read) => Some(DepKind::True),
            (AccessKind::Read, AccessKind::Write) => Some(DepKind::Anti),
            (AccessKind::Write, AccessKind::Write) => Some(DepKind::Output),
            (AccessKind::Read, AccessKind::Read) => None,
        }
    }

    /// Human-readable name.
    pub fn as_str(&self) -> &'static str {
        match self {
            DepKind::True => "true (flow)",
            DepKind::Anti => "anti",
            DepKind::Output => "output",
        }
    }
}

/// Dependence direction under the analyzed loop (classic `<`, `=`, `>`
/// direction-vector component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Source iteration precedes sink (`<`).
    Lt,
    /// Same iteration (`=`).
    Eq,
    /// Source iteration follows sink (`>`).
    Gt,
    /// Unknown (`*`).
    Star,
}

impl Direction {
    /// Classic spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Direction::Lt => "<",
            Direction::Eq => "=",
            Direction::Gt => ">",
            Direction::Star => "*",
        }
    }

    /// Derive the direction from a constant distance (sink - source).
    pub fn from_distance(d: Option<i64>) -> Direction {
        match d {
            Some(0) => Direction::Eq,
            Some(d) if d > 0 => Direction::Lt,
            Some(_) => Direction::Gt,
            None => Direction::Star,
        }
    }
}

/// One discovered dependence between two accesses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dependence {
    /// The source access (earlier in program order).
    pub src: Access,
    /// The sink access.
    pub dst: Access,
    /// Flow/anti/output.
    pub kind: DepKind,
    /// Whether the dependence crosses iterations of the analyzed loop.
    pub carried: bool,
    /// Constant iteration distance, when the test produced one.
    pub distance: Option<i64>,
    /// `false` when the dependence is only *possible* (opaque subscripts,
    /// symbolic gaps) rather than proven.
    pub certain: bool,
}

impl Dependence {
    /// Direction-vector component for the analyzed loop.
    pub fn direction(&self) -> Direction {
        if !self.carried {
            return Direction::Eq;
        }
        Direction::from_distance(self.distance)
    }
}

impl Dependence {
    /// DRB-style description: `a[i+1]@64:10:R vs. a[i]@64:5:W`.
    pub fn describe(&self) -> String {
        format!("{} vs. {}", self.src.label(), self.dst.label())
    }
}

/// Summary of a loop's dependence structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoopAnalysis {
    /// Induction variable name (None when the loop is not canonical).
    pub induction_var: Option<String>,
    /// Normalized bounds.
    pub bounds: LoopBounds,
    /// All accesses in the loop body (plus header expressions).
    pub accesses: Vec<Access>,
    /// All conflicting dependences found.
    pub dependences: Vec<Dependence>,
}

impl LoopAnalysis {
    /// Dependences carried across iterations (the race-relevant ones for
    /// a worksharing loop).
    pub fn carried(&self) -> impl Iterator<Item = &Dependence> {
        self.dependences.iter().filter(|d| d.carried)
    }

    /// Whether any loop-carried dependence exists.
    pub fn has_carried(&self) -> bool {
        self.dependences.iter().any(|d| d.carried)
    }
}

/// Extract normalized bounds from a canonical loop header.
pub fn loop_bounds(f: &ForStmt) -> LoopBounds {
    let var = f.induction_var();

    // Starting value from init.
    let start = match &f.init {
        ForInit::Decl(d) => d.vars.first().and_then(|v| match &v.init {
            Some(minic::ast::Init::Expr(e)) => e.const_int(),
            _ => None,
        }),
        ForInit::Expr(Expr::Assign { rhs, .. }) => rhs.const_int(),
        _ => None,
    };

    // Step from the increment expression (sign determines direction).
    let step = match (var, &f.step) {
        (Some(var), Some(se)) => step_of(se, var).unwrap_or(1),
        _ => 1,
    };

    // The far end of the range from the condition, normalized to an
    // *exclusive-when-increasing / inclusive-low-when-decreasing* limit.
    let mut limit = None; // (value, inclusive)
    if let (Some(var), Some(Expr::Binary { op, lhs, rhs, .. })) = (var, &f.cond) {
        let lhs_is_var = matches!(lhs.as_ref(), Expr::Ident { name, .. } if name == var);
        let rhs_is_var = matches!(rhs.as_ref(), Expr::Ident { name, .. } if name == var);
        if lhs_is_var {
            limit = match op {
                BinOp::Lt => rhs.const_int().map(|v| (v, false)),
                BinOp::Le => rhs.const_int().map(|v| (v, true)),
                BinOp::Gt => rhs.const_int().map(|v| (v, false)),
                BinOp::Ge => rhs.const_int().map(|v| (v, true)),
                _ => None,
            };
        } else if rhs_is_var {
            // `ub > i` etc., with the variable on the right.
            limit = match op {
                BinOp::Gt => lhs.const_int().map(|v| (v, false)),
                BinOp::Ge => lhs.const_int().map(|v| (v, true)),
                BinOp::Lt => lhs.const_int().map(|v| (v, false)),
                BinOp::Le => lhs.const_int().map(|v| (v, true)),
                _ => None,
            };
        }
    }

    if step >= 0 {
        let ub = limit.map(|(v, incl)| if incl { v + 1 } else { v });
        LoopBounds { lb: start, ub, step }
    } else {
        // Decreasing loop: iteration space is [limit, start], normalized to
        // lb = smallest touched value, ub = start + 1.
        let lb = limit.map(|(v, incl)| if incl { v } else { v + 1 });
        LoopBounds { lb, ub: start.map(|s| s + 1), step }
    }
}

fn step_of(e: &Expr, var: &str) -> Option<i64> {
    match e {
        Expr::IncDec { inc, expr, .. } => {
            if expr.root_var() == Some(var) {
                Some(if *inc { 1 } else { -1 })
            } else {
                None
            }
        }
        Expr::Assign { op, lhs, rhs, .. } if lhs.root_var() == Some(var) => match op {
            minic::ast::AssignOp::Add => rhs.const_int(),
            minic::ast::AssignOp::Sub => rhs.const_int().map(|v| -v),
            minic::ast::AssignOp::Assign => {
                // i = i + k / i = i - k
                if let Expr::Binary { op, lhs: l2, rhs: r2, .. } = rhs.as_ref() {
                    let af = Affine::from_expr(rhs);
                    if af.coeff(var) == 1 && af.coeffs.len() == 1 && !af.opaque {
                        return Some(af.constant);
                    }
                    let _ = (op, l2, r2);
                }
                None
            }
            _ => None,
        },
        _ => None,
    }
}

/// Analyze a `for` loop: collect accesses, test all conflicting pairs.
pub fn analyze_loop(f: &ForStmt) -> LoopAnalysis {
    let var = f.induction_var().map(str::to_string);
    let bounds = loop_bounds(f);
    let accesses = crate::access::accesses_of_stmt(&f.body);
    let dependences = match &var {
        Some(v) => pairwise_dependences(&accesses, v, &bounds, &[]),
        None => pairwise_dependences(&accesses, "", &bounds, &[]),
    };
    LoopAnalysis { induction_var: var, bounds, accesses, dependences }
}

/// Test every conflicting access pair on the same variable.
///
/// `private` lists variables that are private per iteration/thread —
/// accesses to them never form (cross-thread) dependences. The loop
/// induction variable is implicitly private in a worksharing loop, so
/// callers include it when analyzing `omp for`.
pub fn pairwise_dependences(
    accesses: &[Access],
    var: &str,
    bounds: &LoopBounds,
    private: &[String],
) -> Vec<Dependence> {
    let mut out = Vec::new();
    for (idx1, a1) in accesses.iter().enumerate() {
        for a2 in &accesses[idx1..] {
            if a1.var != a2.var || !a1.kind.conflicts(&a2.kind) {
                continue;
            }
            if private.contains(&a1.var) {
                continue;
            }
            let Some(kind) = DepKind::classify(a1.kind, a2.kind) else { continue };
            if a1.is_array() && a2.is_array() {
                match subscripts_test(&a1.subscripts, &a2.subscripts, var, bounds) {
                    DepResult::Independent => {}
                    DepResult::Distance(d) => {
                        // Skip the degenerate self-pair at distance 0 (the
                        // same textual access conflicting with itself in the
                        // same iteration is not a dependence).
                        let same_site = std::ptr::eq(a1, a2);
                        if d == 0 && same_site {
                            continue;
                        }
                        out.push(Dependence {
                            src: a1.clone(),
                            dst: a2.clone(),
                            kind,
                            carried: d != 0,
                            distance: Some(d),
                            certain: true,
                        });
                    }
                    DepResult::Unknown => {
                        out.push(Dependence {
                            src: a1.clone(),
                            dst: a2.clone(),
                            kind,
                            carried: true,
                            distance: None,
                            certain: false,
                        });
                    }
                }
            } else if !a1.is_array() && !a2.is_array() {
                // Scalar conflict: every iteration touches the same cell, so
                // any write makes a carried dependence.
                let same_site = std::ptr::eq(a1, a2);
                out.push(Dependence {
                    src: a1.clone(),
                    dst: a2.clone(),
                    kind,
                    carried: true,
                    distance: if same_site { None } else { Some(0) },
                    certain: true,
                });
            } else {
                // Array/scalar mix on the same name (aliasing through
                // pointers): conservative.
                out.push(Dependence {
                    src: a1.clone(),
                    dst: a2.clone(),
                    kind,
                    carried: true,
                    distance: None,
                    certain: false,
                });
            }
        }
    }
    out
}

/// Find the first `for` statement in a subtree (helper for tests and the
/// detector's directive handling).
pub fn first_for(s: &Stmt) -> Option<&ForStmt> {
    match s {
        Stmt::For(f) => Some(f),
        Stmt::Block(b) => b.stmts.iter().find_map(first_for),
        Stmt::Omp { body, .. } => body.as_deref().and_then(first_for),
        Stmt::If { then, els, .. } => {
            first_for(then).or_else(|| els.as_deref().and_then(first_for))
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => first_for(body),
        _ => None,
    }
}

/// Strip address-of sugar when looking for a loop under unary wrappers.
pub fn unwrap_unary(e: &Expr) -> &Expr {
    match e {
        Expr::Unary { op: UnOp::AddrOf | UnOp::Deref, expr, .. } => unwrap_unary(expr),
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::ast::Item;
    use minic::parser::parse;

    fn analyze(src: &str) -> LoopAnalysis {
        let unit = parse(src).unwrap();
        let Item::Func(f) = &unit.items[0] else { panic!() };
        let fs = f
            .body
            .stmts
            .iter()
            .find_map(first_for)
            .expect("no for loop in test source");
        analyze_loop(fs)
    }

    #[test]
    fn antidep_kernel_is_carried() {
        // DRB001-style anti-dependence.
        let la = analyze(
            "void f(int* a, int len) { int i; for (i = 0; i < len - 1; i++) a[i] = a[i+1] + 1; }",
        );
        assert_eq!(la.induction_var.as_deref(), Some("i"));
        assert!(la.has_carried());
        let d = la.carried().next().unwrap();
        assert_eq!(d.kind, DepKind::Anti);
        // The read `a[i+1]` appears first (RHS); the write `a[i]` touches
        // the same element one iteration later → distance +1.
        assert_eq!(d.distance, Some(1));
    }

    #[test]
    fn independent_kernel_has_no_carried_array_dep() {
        let la = analyze("void f(int* a) { int i; for (i = 0; i < 100; i++) a[i] = a[i] * 2; }");
        let arr: Vec<_> = la.carried().filter(|d| d.src.is_array()).collect();
        assert!(arr.is_empty(), "{arr:?}");
    }

    #[test]
    fn bounds_extraction() {
        let la = analyze("void f(int* a) { for (int i = 2; i <= 50; i += 3) a[i] = 1; }");
        assert_eq!(la.bounds, LoopBounds::known(2, 51, 3));
    }

    #[test]
    fn reverse_loop_step() {
        let la = analyze("void f(int* a) { int i; for (i = 99; i >= 0; i--) a[i] = 1; }");
        assert_eq!(la.bounds.step, -1);
        assert_eq!(la.bounds.lb, Some(0));
    }

    #[test]
    fn scalar_write_is_carried_output_dep() {
        let la = analyze("void f(int x) { for (int i = 0; i < 10; i++) x = i; }");
        assert!(la
            .dependences
            .iter()
            .any(|d| d.kind == DepKind::Output && d.src.var == "x" && d.carried));
    }

    #[test]
    fn induction_var_can_be_filtered_as_private() {
        let unit =
            parse("void f(int* a) { int i; for (i = 0; i < 10; i++) a[i] = i; }").unwrap();
        let Item::Func(f) = &unit.items[0] else { panic!() };
        let fs = f.body.stmts.iter().find_map(first_for).unwrap();
        let la = analyze_loop(fs);
        let deps = pairwise_dependences(
            &la.accesses,
            "i",
            &la.bounds,
            &["i".to_string()],
        );
        assert!(deps.iter().all(|d| d.src.var != "i"), "{deps:?}");
    }

    #[test]
    fn indirect_subscript_is_uncertain() {
        let la = analyze(
            "void f(int* a, int* idx) { for (int i = 0; i < 10; i++) a[idx[i]] = i; }",
        );
        let d = la.dependences.iter().find(|d| d.src.var == "a").unwrap();
        assert!(!d.certain);
        assert!(d.carried);
    }

    #[test]
    fn stencil_flow_dependence() {
        // a[i+1] = a[i]: write then read across iterations (flow).
        let la = analyze("void f(int* a) { for (int i = 0; i < 99; i++) a[i+1] = a[i]; }");
        let d = la.carried().next().unwrap();
        // Source order: read a[i] comes first (RHS), then write a[i+1].
        assert_eq!(d.kind, DepKind::Anti);
        assert!(la.has_carried());
    }

    #[test]
    fn describe_mentions_both_sites() {
        let la = analyze("void f(int* a) { for (int i = 0; i < 9; i++) a[i] = a[i+1]; }");
        let d = la.carried().next().unwrap();
        let txt = d.describe();
        assert!(txt.contains("a[i + 1]") && txt.contains("vs."), "{txt}");
    }
}

#[cfg(test)]
mod direction_tests {
    use super::*;
    use minic::ast::Item;
    use minic::parser::parse;

    fn first_dep(src: &str) -> Dependence {
        let unit = parse(src).unwrap();
        let Item::Func(f) = &unit.items[0] else { panic!() };
        let fs = f.body.stmts.iter().find_map(first_for).unwrap();
        analyze_loop(fs).dependences.into_iter().next().unwrap()
    }

    #[test]
    fn forward_distance_is_lt() {
        let d = first_dep("void f(int* a) { for (int i = 0; i < 9; i++) a[i] = a[i+1]; }");
        assert_eq!(d.direction(), Direction::Lt);
        assert_eq!(d.direction().as_str(), "<");
    }

    #[test]
    fn unknown_distance_is_star() {
        let d = first_dep(
            "void f(int* a, int* idx) { for (int i = 0; i < 9; i++) a[idx[i]] = i; }",
        );
        assert_eq!(d.direction(), Direction::Star);
    }

    #[test]
    fn from_distance_mapping() {
        assert_eq!(Direction::from_distance(Some(0)), Direction::Eq);
        assert_eq!(Direction::from_distance(Some(3)), Direction::Lt);
        assert_eq!(Direction::from_distance(Some(-2)), Direction::Gt);
        assert_eq!(Direction::from_distance(None), Direction::Star);
    }
}
