//! Affine forms over loop variables.
//!
//! Array subscripts in DataRaceBench kernels are (almost always) affine:
//! `a[i]`, `a[i+1]`, `a[2*i - 1]`, `b[j][i]`. An [`Affine`] is
//! `c0 + Σ cᵥ·v` with integer coefficients over named variables; the
//! dependence tests in [`crate::dtest`] operate on these forms, and
//! anything non-affine degrades to [`Affine::opaque`], which the tests
//! treat conservatively ("may depend").

use minic::ast::{BinOp, Expr, UnOp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An affine integer form `constant + Σ coeff·var`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Affine {
    /// Constant term.
    pub constant: i64,
    /// Per-variable coefficients (zero coefficients are never stored).
    pub coeffs: BTreeMap<String, i64>,
    /// True when the source expression could not be represented and this
    /// form is a conservative stand-in.
    pub opaque: bool,
}

impl Affine {
    /// The constant form `c`.
    pub fn constant(c: i64) -> Self {
        Affine { constant: c, coeffs: BTreeMap::new(), opaque: false }
    }

    /// The form `1·v`.
    pub fn var(v: impl Into<String>) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v.into(), 1);
        Affine { constant: 0, coeffs, opaque: false }
    }

    /// A non-affine stand-in; all dependence tests must be conservative.
    pub fn opaque() -> Self {
        Affine { constant: 0, coeffs: BTreeMap::new(), opaque: true }
    }

    /// Coefficient of `v` (zero if absent).
    pub fn coeff(&self, v: &str) -> i64 {
        self.coeffs.get(v).copied().unwrap_or(0)
    }

    /// Whether the form mentions `v`.
    pub fn mentions(&self, v: &str) -> bool {
        self.coeff(v) != 0
    }

    /// Whether the form is a plain constant.
    pub fn is_constant(&self) -> bool {
        !self.opaque && self.coeffs.is_empty()
    }

    /// Add another form.
    pub fn add(&self, other: &Affine) -> Affine {
        if self.opaque || other.opaque {
            return Affine::opaque();
        }
        let mut out = self.clone();
        out.constant = out.constant.wrapping_add(other.constant);
        for (v, c) in &other.coeffs {
            let e = out.coeffs.entry(v.clone()).or_insert(0);
            *e = e.wrapping_add(*c);
            if *e == 0 {
                out.coeffs.remove(v);
            }
        }
        out
    }

    /// Subtract another form.
    pub fn sub(&self, other: &Affine) -> Affine {
        self.add(&other.scale(-1))
    }

    /// Multiply by a constant.
    pub fn scale(&self, k: i64) -> Affine {
        if self.opaque {
            return Affine::opaque();
        }
        if k == 0 {
            return Affine::constant(0);
        }
        let mut out = self.clone();
        out.constant = out.constant.wrapping_mul(k);
        for c in out.coeffs.values_mut() {
            *c = c.wrapping_mul(k);
        }
        out
    }

    /// The form with variable `v` removed, together with `v`'s coefficient.
    pub fn split_var(&self, v: &str) -> (i64, Affine) {
        let mut rest = self.clone();
        let c = rest.coeffs.remove(v).unwrap_or(0);
        (c, rest)
    }

    /// Build an affine form from an expression. Non-affine constructs
    /// (calls, subscripted subscripts, `%`, variable products…) yield
    /// [`Affine::opaque`].
    pub fn from_expr(e: &Expr) -> Affine {
        match e {
            Expr::IntLit { value, .. } => Affine::constant(*value),
            Expr::Ident { name, .. } => Affine::var(name.clone()),
            Expr::Unary { op: UnOp::Neg, expr, .. } => Affine::from_expr(expr).scale(-1),
            Expr::Cast { expr, .. } => Affine::from_expr(expr),
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = Affine::from_expr(lhs);
                let r = Affine::from_expr(rhs);
                match op {
                    BinOp::Add => l.add(&r),
                    BinOp::Sub => l.sub(&r),
                    BinOp::Mul => {
                        if l.is_constant() {
                            r.scale(l.constant)
                        } else if r.is_constant() {
                            l.scale(r.constant)
                        } else {
                            Affine::opaque()
                        }
                    }
                    BinOp::Div => {
                        // Exact constant division only.
                        if r.is_constant()
                            && r.constant != 0
                            && l.is_constant()
                            && l.constant % r.constant == 0
                        {
                            Affine::constant(l.constant / r.constant)
                        } else {
                            Affine::opaque()
                        }
                    }
                    _ => {
                        if l.is_constant() && r.is_constant() {
                            e.const_int().map(Affine::constant).unwrap_or_else(Affine::opaque)
                        } else {
                            Affine::opaque()
                        }
                    }
                }
            }
            _ => match e.const_int() {
                Some(v) => Affine::constant(v),
                None => Affine::opaque(),
            },
        }
    }
}

impl fmt::Display for Affine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.opaque {
            return write!(f, "<opaque>");
        }
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                match *c {
                    1 => write!(f, "{v}")?,
                    -1 => write!(f, "-{v}")?,
                    c => write!(f, "{c}*{v}")?,
                }
                first = false;
            } else if *c >= 0 {
                if *c == 1 {
                    write!(f, " + {v}")?;
                } else {
                    write!(f, " + {c}*{v}")?;
                }
            } else if *c == -1 {
                write!(f, " - {v}")?;
            } else {
                write!(f, " - {}*{v}", -c)?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant > 0 {
            write!(f, " + {}", self.constant)?;
        } else if self.constant < 0 {
            write!(f, " - {}", -self.constant)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parser::Parser;
    use minic::lexer::Lexer;

    fn affine(src: &str) -> Affine {
        let toks = Lexer::tokenize(src).unwrap();
        let mut p = Parser::new(toks);
        let e = p.parse_expr().unwrap();
        Affine::from_expr(&e)
    }

    #[test]
    fn builds_simple_forms() {
        assert_eq!(affine("42"), Affine::constant(42));
        assert_eq!(affine("i"), Affine::var("i"));
        let f = affine("2*i + 3");
        assert_eq!(f.coeff("i"), 2);
        assert_eq!(f.constant, 3);
    }

    #[test]
    fn handles_subtraction_and_negation() {
        let f = affine("i - j - 1");
        assert_eq!(f.coeff("i"), 1);
        assert_eq!(f.coeff("j"), -1);
        assert_eq!(f.constant, -1);
        assert_eq!(affine("-i").coeff("i"), -1);
    }

    #[test]
    fn cancels_terms() {
        let f = affine("i + 1 - i");
        assert!(f.is_constant());
        assert_eq!(f.constant, 1);
    }

    #[test]
    fn nonaffine_is_opaque() {
        assert!(affine("i * j").opaque);
        assert!(affine("i % 2").opaque);
        assert!(affine("f(i)").opaque);
        assert!(affine("a[i]").opaque);
    }

    #[test]
    fn constant_folding_within_affine() {
        let f = affine("3 * (i + 2)");
        assert_eq!(f.coeff("i"), 3);
        assert_eq!(f.constant, 6);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(affine("2*i + 3").to_string(), "2*i + 3");
        assert_eq!(affine("i - 1").to_string(), "i - 1");
        assert_eq!(affine("0").to_string(), "0");
        assert_eq!(affine("-i").to_string(), "-i");
    }

    #[test]
    fn split_var() {
        let (c, rest) = affine("2*i + j + 5").split_var("i");
        assert_eq!(c, 2);
        assert_eq!(rest.coeff("j"), 1);
        assert_eq!(rest.constant, 5);
        assert!(!rest.mentions("i"));
    }
}
