//! `depend` — data-dependence analysis over `minic` ASTs.
//!
//! The paper's prompt strategies p2/p3 instruct LLMs to "identify any
//! data races based on data dependence analysis"; this crate is the real
//! thing — the analysis a traditional static tool performs:
//!
//! * [`access`] — extraction of read/write accesses with spans,
//! * [`affine`] — affine subscript forms,
//! * [`dtest`] — GCD and Banerjee dependence decision procedures,
//! * [`loopdep`] — loop-level classification (true/anti/output,
//!   loop-carried or independent, constant distances).
//!
//! ```
//! use minic::ast::Item;
//! let unit = minic::parse(
//!     "void f(int* a) { for (int i = 0; i < 99; i++) a[i] = a[i+1]; }",
//! ).unwrap();
//! let Item::Func(f) = &unit.items[0] else { unreachable!() };
//! let minic::ast::Stmt::For(fs) = &f.body.stmts[0] else { unreachable!() };
//! let la = depend::analyze_loop(fs);
//! assert!(la.has_carried()); // the anti-dependence a[i] vs a[i+1]
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod affine;
pub mod dtest;
pub mod loopdep;

pub use access::{accesses_of_block, accesses_of_expr, accesses_of_stmt, Access, AccessKind};
pub use affine::Affine;
pub use dtest::{subscript_test, subscripts_test, DepResult, LoopBounds};
pub use loopdep::{
    analyze_loop, first_for, loop_bounds, pairwise_dependences, DepKind, Dependence, Direction,
    LoopAnalysis,
};
