//! Dependence decision procedures: GCD and Banerjee tests.
//!
//! Given two affine subscripts `f(i) = a₁·i + r₁` and `g(i) = a₂·i + r₂`
//! of the same array under loop variable `i`, decide whether iterations
//! `i₁, i₂` exist with `f(i₁) = g(i₂)` — and if so, whether the solution
//! is loop-carried (`i₁ ≠ i₂`) and at what distance.

use crate::affine::Affine;
use serde::{Deserialize, Serialize};

/// Normalized loop bounds: `i` ranges over `[lb, ub)` stepping by `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopBounds {
    /// Inclusive lower bound, when statically known.
    pub lb: Option<i64>,
    /// Exclusive upper bound, when statically known.
    pub ub: Option<i64>,
    /// Loop step (defaults to 1).
    pub step: i64,
}

impl LoopBounds {
    /// Bounds with nothing known (step 1).
    pub fn unknown() -> Self {
        LoopBounds { lb: None, ub: None, step: 1 }
    }

    /// Fully-known bounds.
    pub fn known(lb: i64, ub: i64, step: i64) -> Self {
        LoopBounds { lb: Some(lb), ub: Some(ub), step }
    }

    /// Trip count, when both bounds are known. Bounds are normalized
    /// (`lb` is the smallest touched value), so a negative step walks the
    /// same |step|-spaced lattice in the other direction.
    pub fn trip_count(&self) -> Option<i64> {
        let stride = self.step.unsigned_abs() as i64;
        match (self.lb, self.ub) {
            (Some(lb), Some(ub)) if stride > 0 && ub > lb => {
                Some((ub - lb + stride - 1) / stride)
            }
            (Some(_), Some(_)) => Some(0),
            _ => None,
        }
    }
}

/// Outcome of a dependence test on one subscript pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DepResult {
    /// Proven: no pair of iterations touches the same element.
    Independent,
    /// Proven or assumed dependence with a known constant distance
    /// (`i₂ = i₁ + distance` at the conflict). Distance 0 means the
    /// conflict is within one iteration (loop-independent).
    Distance(i64),
    /// Dependence possible but distance unknown (distinct coefficients,
    /// symbolic terms, or opaque subscripts).
    Unknown,
}

impl DepResult {
    /// Whether this result admits a loop-carried dependence.
    pub fn may_be_carried(&self) -> bool {
        match self {
            DepResult::Independent => false,
            DepResult::Distance(d) => *d != 0,
            DepResult::Unknown => true,
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Test one subscript dimension pair under loop variable `var`.
///
/// `f` is the subscript of the first access (at iteration `i₁`), `g` of
/// the second (at iteration `i₂`). Solves `a₁·i₁ + r₁ = a₂·i₂ + r₂`.
pub fn subscript_test(f: &Affine, g: &Affine, var: &str, bounds: &LoopBounds) -> DepResult {
    if f.opaque || g.opaque {
        return DepResult::Unknown;
    }
    let (a1, r1) = f.split_var(var);
    let (a2, r2) = g.split_var(var);
    // The residues must agree on every symbolic variable for us to reason
    // about the constant gap; otherwise the gap is symbolic.
    let gap = r2.sub(&r1);
    if !gap.coeffs.is_empty() {
        return DepResult::Unknown;
    }
    let c = gap.constant; // a1*i1 - a2*i2 = c

    if a1 == 0 && a2 == 0 {
        // Neither subscript varies with the loop: same element iff c == 0,
        // and then every iteration pair conflicts (unknown distance).
        return if c == 0 { DepResult::Unknown } else { DepResult::Independent };
    }

    // GCD test.
    let g0 = gcd(a1, a2);
    if g0 != 0 && c % g0 != 0 {
        return DepResult::Independent;
    }

    if a1 == a2 {
        // Equal coefficients: a·(i1 - i2) = c → constant distance.
        let a = a1;
        debug_assert!(a != 0);
        if c % a != 0 {
            return DepResult::Independent;
        }
        // i1 = i2 + c/a, i.e. the second access at iteration i2 touches
        // what the first touched at i2 + c/a. Normalize distance to
        // "iterations from first to second": i2 - i1 = -c/a.
        let distance = -c / a;
        // Banerjee-style bounds pruning: the distance must fit inside the
        // iteration space, and must be a multiple of the step in
        // iteration-index terms.
        if let Some(tc) = bounds.trip_count() {
            if distance.abs() >= tc.max(0) {
                return DepResult::Independent;
            }
        }
        let stride = bounds.step.unsigned_abs() as i64;
        if stride > 1 && distance % stride != 0 {
            return DepResult::Independent;
        }
        return DepResult::Distance(distance / stride.max(1));
    }

    // Distinct coefficients: Banerjee bounds check when the loop range is
    // known; otherwise conservatively unknown.
    if let (Some(lb), Some(ub)) = (bounds.lb, bounds.ub) {
        if ub <= lb {
            return DepResult::Independent;
        }
        let hi = ub - 1;
        // min/max of a1*i1 - a2*i2 over i1, i2 ∈ [lb, hi].
        let term_min = |a: i64| if a >= 0 { a * lb } else { a * hi };
        let term_max = |a: i64| if a >= 0 { a * hi } else { a * lb };
        let min = term_min(a1) - term_max(a2);
        let max = term_max(a1) - term_min(a2);
        if c < min || c > max {
            return DepResult::Independent;
        }
    }
    DepResult::Unknown
}

/// Test a full (multi-dimensional) subscript pair: dependence requires a
/// simultaneous solution in every dimension.
pub fn subscripts_test(
    f: &[Affine],
    g: &[Affine],
    var: &str,
    bounds: &LoopBounds,
) -> DepResult {
    if f.len() != g.len() || f.is_empty() {
        // Dimension mismatch (or scalars handed to the array test):
        // be conservative.
        return DepResult::Unknown;
    }
    let mut distance: Option<i64> = None;
    let mut any_unknown = false;
    for (fd, gd) in f.iter().zip(g) {
        match subscript_test(fd, gd, var, bounds) {
            DepResult::Independent => return DepResult::Independent,
            DepResult::Distance(d) => match distance {
                None => distance = Some(d),
                Some(prev) if prev != d => {
                    // Dimensions demand inconsistent distances → no
                    // simultaneous solution.
                    return DepResult::Independent;
                }
                Some(_) => {}
            },
            DepResult::Unknown => any_unknown = true,
        }
    }
    // A dimension with a pinned distance constrains every solution: if
    // dim k forces i₂ = i₁ + d, the unknown dimensions can only add or
    // remove solutions *at that distance* — they cannot move it. So a
    // known distance wins over Unknown siblings (conservatively assuming
    // the unknown dimensions do have a solution there).
    match (distance, any_unknown) {
        (Some(d), _) => DepResult::Distance(d),
        (None, _) => DepResult::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn av(v: &str) -> Affine {
        Affine::var(v)
    }

    fn a_plus(v: &str, c: i64) -> Affine {
        Affine::var(v).add(&Affine::constant(c))
    }

    #[test]
    fn identical_subscripts_distance_zero() {
        let b = LoopBounds::known(0, 100, 1);
        assert_eq!(subscript_test(&av("i"), &av("i"), "i", &b), DepResult::Distance(0));
    }

    #[test]
    fn anti_dependence_distance_one() {
        // a[i] (write) vs a[i+1] (read): f = i, g = i + 1.
        let b = LoopBounds::known(0, 100, 1);
        let r = subscript_test(&av("i"), &a_plus("i", 1), "i", &b);
        assert_eq!(r, DepResult::Distance(-1));
        assert!(r.may_be_carried());
    }

    #[test]
    fn gcd_proves_independence() {
        // a[2*i] vs a[2*i + 1]: parity differs.
        let f = Affine::var("i").scale(2);
        let g = Affine::var("i").scale(2).add(&Affine::constant(1));
        let b = LoopBounds::known(0, 100, 1);
        assert_eq!(subscript_test(&f, &g, "i", &b), DepResult::Independent);
    }

    #[test]
    fn distance_beyond_trip_count_is_independent() {
        let b = LoopBounds::known(0, 4, 1);
        assert_eq!(subscript_test(&av("i"), &a_plus("i", 10), "i", &b), DepResult::Independent);
    }

    #[test]
    fn banerjee_prunes_disjoint_ranges() {
        // a[i] vs a[i2 + 200] with i ∈ [0, 100): c = 200 out of range.
        let b = LoopBounds::known(0, 100, 1);
        assert_eq!(
            subscript_test(&av("i"), &a_plus("i", 200), "i", &b),
            DepResult::Independent
        );
    }

    #[test]
    fn distinct_coefficients_in_range_unknown() {
        // a[i] vs a[2*i]: dependent at i=0 etc., distance varies.
        let b = LoopBounds::known(0, 100, 1);
        let r = subscript_test(&av("i"), &Affine::var("i").scale(2), "i", &b);
        assert_eq!(r, DepResult::Unknown);
    }

    #[test]
    fn loop_invariant_same_constant_conflicts() {
        let b = LoopBounds::known(0, 100, 1);
        let r = subscript_test(&Affine::constant(5), &Affine::constant(5), "i", &b);
        assert_eq!(r, DepResult::Unknown);
        assert!(r.may_be_carried());
        assert_eq!(
            subscript_test(&Affine::constant(5), &Affine::constant(6), "i", &b),
            DepResult::Independent
        );
    }

    #[test]
    fn symbolic_gap_is_unknown() {
        // a[i] vs a[i + n] — n symbolic.
        let b = LoopBounds::known(0, 100, 1);
        let g = Affine::var("i").add(&Affine::var("n"));
        assert_eq!(subscript_test(&av("i"), &g, "i", &b), DepResult::Unknown);
    }

    #[test]
    fn opaque_is_unknown() {
        let b = LoopBounds::unknown();
        assert_eq!(subscript_test(&Affine::opaque(), &av("i"), "i", &b), DepResult::Unknown);
    }

    #[test]
    fn multidim_inconsistent_distances_independent() {
        // b[i][i] vs b[i][i+1]: dim0 wants distance 0, dim1 wants -1.
        let b = LoopBounds::known(0, 10, 1);
        let f = vec![av("i"), av("i")];
        let g = vec![av("i"), a_plus("i", 1)];
        assert_eq!(subscripts_test(&f, &g, "i", &b), DepResult::Independent);
    }

    #[test]
    fn multidim_consistent_distance() {
        let b = LoopBounds::known(0, 10, 1);
        let f = vec![av("i"), a_plus("i", 1)];
        let g = vec![a_plus("i", 1), a_plus("i", 2)];
        assert_eq!(subscripts_test(&f, &g, "i", &b), DepResult::Distance(-1));
    }

    #[test]
    fn strided_loop_distance() {
        // Loop with step 2: a[i] vs a[i+2] → one iteration apart.
        let b = LoopBounds::known(0, 100, 2);
        assert_eq!(subscript_test(&av("i"), &a_plus("i", 2), "i", &b), DepResult::Distance(-1));
        // a[i] vs a[i+1] under step 2: offset not a multiple of step.
        assert_eq!(subscript_test(&av("i"), &a_plus("i", 1), "i", &b), DepResult::Independent);
    }

    #[test]
    fn trip_count_math() {
        assert_eq!(LoopBounds::known(0, 10, 1).trip_count(), Some(10));
        assert_eq!(LoopBounds::known(0, 10, 3).trip_count(), Some(4));
        assert_eq!(LoopBounds::known(5, 5, 1).trip_count(), Some(0));
        assert_eq!(LoopBounds::unknown().trip_count(), None);
    }
}
