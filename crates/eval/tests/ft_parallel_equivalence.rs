//! Fold-parallel cross-validation must be a pure throughput change:
//! Tables 4 and 6 serialized to JSON are byte-identical whether the
//! 2 models × 5 folds fine-tuning jobs run on one worker or eight, and
//! two runs at the same worker count agree to the last bit. The fast
//! path is also compared against the pre-PR serial reference trainer.
//!
//! Worker counts are passed explicitly through
//! `cv_tables_with_workers` — not via `RACELLM_WORKERS` — so these
//! tests cannot race other tests on the environment.

use eval::tables::{cv_tables_with_workers, table4_serial_reference, table6_serial_reference};

fn json(rows: &[eval::CvRow]) -> String {
    serde_json::to_string_pretty(rows).expect("rows serialize")
}

#[test]
fn parallel_cv_tables_byte_identical_at_1_and_8_workers() {
    let (t4_serial, t6_serial) = cv_tables_with_workers(1);
    let (t4_par, t6_par) = cv_tables_with_workers(8);
    assert_eq!(json(&t4_serial), json(&t4_par), "Table 4 differs across worker counts");
    assert_eq!(json(&t6_serial), json(&t6_par), "Table 6 differs across worker counts");
}

#[test]
fn two_parallel_runs_agree_to_the_last_bit() {
    let (t4_a, t6_a) = cv_tables_with_workers(8);
    let (t4_b, t6_b) = cv_tables_with_workers(8);
    assert_eq!(json(&t4_a), json(&t4_b));
    assert_eq!(json(&t6_a), json(&t6_b));
}

#[test]
fn fast_path_matches_serial_reference_tables() {
    // The fast trainer consumes the same RNG stream and computes
    // bit-identical gradients; only Adam's float evaluation order
    // differs (rounding-level). That noise must not move any table
    // cell: per-fold confusions are integer counts well away from the
    // decision thresholds (verified: rows are exactly equal).
    let (t4, t6) = cv_tables_with_workers(1);
    assert_eq!(t4, table4_serial_reference(), "Table 4 fast vs pre-PR reference");
    assert_eq!(t6, table6_serial_reference(), "Table 6 fast vs pre-PR reference");
}

#[test]
fn cached_tables_match_explicit_worker_runs() {
    // `table4()`/`table6()` serve from the per-process cache built with
    // default workers; the cache must hold the same bytes as a direct
    // run at any worker count.
    let (t4, t6) = cv_tables_with_workers(3);
    assert_eq!(json(&eval::table4()), json(&t4));
    assert_eq!(json(&eval::table6()), json(&t6));
}
