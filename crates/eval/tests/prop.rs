//! Property tests: metric identities, parser totality, and parallel-map
//! equivalence.

use eval::{par_map, parse_pairs, parse_verdict, Agreement, Confusion};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn metrics_are_bounded(tp in 0u32..500, fp in 0u32..500, tn in 0u32..500, fn_ in 0u32..500) {
        let c = Confusion { tp, fp, tn, fn_ };
        for v in [c.recall(), c.precision(), c.f1(), c.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        // F1 lies between min and max of P and R (harmonic mean property).
        let (r, p) = (c.recall(), c.precision());
        if r > 0.0 && p > 0.0 {
            prop_assert!(c.f1() <= r.max(p) + 1e-12);
            prop_assert!(c.f1() >= r.min(p) - 1e-12 || c.f1() >= 0.0);
        }
    }

    #[test]
    fn record_accumulates(truths in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..100)) {
        let mut c = Confusion::default();
        for &(t, p) in &truths {
            c.record(t, p);
        }
        prop_assert_eq!(c.total() as usize, truths.len());
        let tp = truths.iter().filter(|&&(t, p)| t && p).count();
        prop_assert_eq!(c.tp as usize, tp);
    }

    #[test]
    fn merge_is_addition(
        a in (0u32..100, 0u32..100, 0u32..100, 0u32..100),
        b in (0u32..100, 0u32..100, 0u32..100, 0u32..100),
    ) {
        let mut x = Confusion { tp: a.0, fp: a.1, tn: a.2, fn_: a.3 };
        let y = Confusion { tp: b.0, fp: b.1, tn: b.2, fn_: b.3 };
        x.merge(&y);
        prop_assert_eq!(x.total(), a.0 + a.1 + a.2 + a.3 + b.0 + b.1 + b.2 + b.3);
    }

    #[test]
    fn verdict_parser_total(s in "\\PC{0,400}") {
        let _ = parse_verdict(&s);
    }

    #[test]
    fn pair_parser_total(s in "\\PC{0,400}") {
        let _ = parse_pairs(&s);
    }

    #[test]
    fn pair_parser_total_on_jsonish(s in "[{}\\[\\]\",:a-z0-9_ \n]{0,300}") {
        let _ = parse_pairs(&s);
    }

    #[test]
    fn leading_yes_no_always_wins(rest in "[ -~]{0,100}") {
        prop_assert_eq!(parse_verdict(&format!("yes {rest}")), eval::Verdict::Yes);
        prop_assert_eq!(parse_verdict(&format!("No, {rest}")), eval::Verdict::No);
    }

    #[test]
    fn par_map_equals_serial(xs in proptest::collection::vec(0i64..1000, 0..200), w in 1usize..9) {
        let serial: Vec<i64> = xs.iter().map(|x| x * 3 + 1).collect();
        let parallel = par_map(&xs, w, |x| x * 3 + 1);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn cells_sum_to_corpus_size(truths in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..200)) {
        // The four confusion cells always partition the corpus.
        let mut c = Confusion::default();
        for &(t, p) in &truths {
            c.record(t, p);
        }
        prop_assert_eq!((c.tp + c.fp + c.tn + c.fn_) as usize, truths.len());
    }

    #[test]
    fn label_permutation_symmetry(truths in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..200)) {
        // Relabelling both sides (race <-> clean) swaps tp<->tn and
        // fp<->fn_, swapping precision with the negative-class
        // precision while leaving accuracy and total fixed.
        let (mut c, mut flipped) = (Confusion::default(), Confusion::default());
        for &(t, p) in &truths {
            c.record(t, p);
            flipped.record(!t, !p);
        }
        prop_assert_eq!(c.tp, flipped.tn);
        prop_assert_eq!(c.fp, flipped.fn_);
        prop_assert_eq!(c.total(), flipped.total());
        prop_assert!((c.accuracy() - flipped.accuracy()).abs() < 1e-12);
    }

    #[test]
    fn transpose_swaps_precision_and_recall(tp in 0u32..200, fp in 0u32..200, tn in 0u32..200, fn_ in 0u32..200) {
        // Swapping prediction and truth (transpose of the matrix)
        // exchanges fp and fn_, hence precision and recall; F1, being
        // their harmonic mean, is invariant.
        let c = Confusion { tp, fp, tn, fn_ };
        let t = Confusion { tp, fp: fn_, tn, fn_: fp };
        prop_assert!((c.precision() - t.recall()).abs() < 1e-12);
        prop_assert!((c.recall() - t.precision()).abs() < 1e-12);
        prop_assert!((c.f1() - t.f1()).abs() < 1e-12);
    }

    #[test]
    fn agreement_matrix_invariants(rows in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<bool>()), 0..150)) {
        let mut a = Agreement::new(&["x", "y", "z"]);
        for &(x, y, z) in &rows {
            a.record(&[x, y, z]);
        }
        prop_assert_eq!(a.total() as usize, rows.len());
        for i in 0..3 {
            // Self-agreement is total, and the matrix is symmetric.
            prop_assert_eq!(a.count(i, i), a.total());
            for j in 0..3 {
                prop_assert_eq!(a.count(i, j), a.count(j, i));
                prop_assert!(a.count(i, j) <= a.total());
                let r = a.rate(i, j);
                prop_assert!((0.0..=1.0).contains(&r), "{r}");
            }
        }
    }

    #[test]
    fn agreement_record_order_is_irrelevant(rows in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..100)) {
        let (mut fwd, mut rev) = (Agreement::new(&["a", "b"]), Agreement::new(&["a", "b"]));
        for &(x, y) in &rows {
            fwd.record(&[x, y]);
        }
        for &(x, y) in rows.iter().rev() {
            rev.record(&[x, y]);
        }
        prop_assert_eq!(fwd, rev);
    }
}
