//! Property tests: metric identities, parser totality, and parallel-map
//! equivalence.

use eval::{par_map, parse_pairs, parse_verdict, Confusion};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn metrics_are_bounded(tp in 0u32..500, fp in 0u32..500, tn in 0u32..500, fn_ in 0u32..500) {
        let c = Confusion { tp, fp, tn, fn_ };
        for v in [c.recall(), c.precision(), c.f1(), c.accuracy()] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
        // F1 lies between min and max of P and R (harmonic mean property).
        let (r, p) = (c.recall(), c.precision());
        if r > 0.0 && p > 0.0 {
            prop_assert!(c.f1() <= r.max(p) + 1e-12);
            prop_assert!(c.f1() >= r.min(p) - 1e-12 || c.f1() >= 0.0);
        }
    }

    #[test]
    fn record_accumulates(truths in proptest::collection::vec((any::<bool>(), any::<bool>()), 0..100)) {
        let mut c = Confusion::default();
        for &(t, p) in &truths {
            c.record(t, p);
        }
        prop_assert_eq!(c.total() as usize, truths.len());
        let tp = truths.iter().filter(|&&(t, p)| t && p).count();
        prop_assert_eq!(c.tp as usize, tp);
    }

    #[test]
    fn merge_is_addition(
        a in (0u32..100, 0u32..100, 0u32..100, 0u32..100),
        b in (0u32..100, 0u32..100, 0u32..100, 0u32..100),
    ) {
        let mut x = Confusion { tp: a.0, fp: a.1, tn: a.2, fn_: a.3 };
        let y = Confusion { tp: b.0, fp: b.1, tn: b.2, fn_: b.3 };
        x.merge(&y);
        prop_assert_eq!(x.total(), a.0 + a.1 + a.2 + a.3 + b.0 + b.1 + b.2 + b.3);
    }

    #[test]
    fn verdict_parser_total(s in "\\PC{0,400}") {
        let _ = parse_verdict(&s);
    }

    #[test]
    fn pair_parser_total(s in "\\PC{0,400}") {
        let _ = parse_pairs(&s);
    }

    #[test]
    fn pair_parser_total_on_jsonish(s in "[{}\\[\\]\",:a-z0-9_ \n]{0,300}") {
        let _ = parse_pairs(&s);
    }

    #[test]
    fn leading_yes_no_always_wins(rest in "[ -~]{0,100}") {
        prop_assert_eq!(parse_verdict(&format!("yes {rest}")), eval::Verdict::Yes);
        prop_assert_eq!(parse_verdict(&format!("No, {rest}")), eval::Verdict::No);
    }

    #[test]
    fn par_map_equals_serial(xs in proptest::collection::vec(0i64..1000, 0..200), w in 1usize..9) {
        let serial: Vec<i64> = xs.iter().map(|x| x * 3 + 1).collect();
        let parallel = par_map(&xs, w, |x| x * 3 + 1);
        prop_assert_eq!(serial, parallel);
    }
}
