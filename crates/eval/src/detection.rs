//! Detection experiments (S1): run a model × prompt sweep over the
//! DRB-ML subset through the full textual pipeline — render prompts,
//! chat, parse the free-text answers, score against labels.

use crate::metrics::Confusion;
use crate::par::{default_workers, par_map};
use crate::parse::{parse_verdict, Verdict};
use llm::{ChatSession, KernelView, ModelKind, PromptStrategy, Surrogate};

/// Outcome of one kernel's chat (kept for audits / failure analysis).
#[derive(Debug, Clone, Default)]
pub struct Exchange {
    /// Kernel id.
    pub id: u32,
    /// Prompt turns sent.
    pub prompts: Vec<String>,
    /// Model responses per turn.
    pub responses: Vec<String>,
    /// Parsed verdict of the final turn.
    pub verdict: Option<bool>,
    /// Ground truth.
    pub truth: bool,
}

/// Run the full textual pipeline for one (model, prompt) pair.
pub fn run_detection(
    surrogate: &Surrogate,
    strategy: PromptStrategy,
    views: &[KernelView],
) -> (Confusion, Vec<Exchange>) {
    let exchanges = par_map(views, default_workers(), |k| {
        let prompts = drb_ml::render(strategy, &k.trimmed_code);
        let mut chat = ChatSession::new(surrogate, k, strategy);
        let responses: Vec<String> = prompts.iter().map(|p| chat.send(p)).collect();
        let final_resp = responses.last().map(String::as_str).unwrap_or("");
        let verdict = match parse_verdict(final_resp) {
            Verdict::Yes => Some(true),
            Verdict::No => Some(false),
            Verdict::Unknown => None,
        };
        Exchange { id: k.id, prompts, responses, verdict, truth: k.race }
    });
    let mut c = Confusion::default();
    for e in &exchanges {
        // An unparseable answer counts as "no race flagged" (the tools
        // comparison treats silence as a negative).
        c.record(e.truth, e.verdict.unwrap_or(false));
    }
    (c, exchanges)
}

/// The traditional-tool baseline row (Table 3 "Ins"): run the static
/// detector on every subset entry, reusing each view's cached AST
/// (unparseable code still counts as "no race flagged", exactly as the
/// parse-per-sweep version did).
pub fn run_baseline(views: &[KernelView]) -> Confusion {
    let preds = par_map(views, default_workers(), |k| {
        k.artifact().ast.as_ref().map(|u| racecheck::check(u).has_race()).unwrap_or(false)
    });
    let mut c = Confusion::default();
    for (k, p) in views.iter().zip(preds) {
        c.record(k.race, p);
    }
    c
}

/// Build (and cache) surrogates for all four models against a subset.
pub fn surrogates(views: &[KernelView]) -> Vec<(ModelKind, Surrogate)> {
    ModelKind::ALL.iter().map(|&m| (m, Surrogate::new(m, views))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use drb_ml::Dataset;

    #[test]
    fn detection_matches_calibrated_cells() {
        let views = Dataset::generate().subset_views();
        let s = Surrogate::new(ModelKind::Gpt4, &views);
        let (c, ex) = run_detection(&s, PromptStrategy::P1, &views);
        assert_eq!(c.total(), 198);
        assert_eq!(ex.len(), 198);
        // Paper Table 3, GPT4 p1: TP 77, TN 70 (±1 for rounding).
        assert!((c.tp as i64 - 77).abs() <= 1, "{c}");
        assert!((c.tn as i64 - 70).abs() <= 1, "{c}");
    }

    #[test]
    fn every_exchange_has_parseable_verdict() {
        let views = Dataset::generate().subset_views();
        let s = Surrogate::new(ModelKind::StarChatBeta, &views);
        let (_, ex) = run_detection(&s, PromptStrategy::P3, &views);
        assert!(ex.iter().all(|e| e.verdict.is_some()));
        // p3 is a two-turn chat.
        assert!(ex.iter().all(|e| e.prompts.len() == 2 && e.responses.len() == 2));
    }

    #[test]
    fn baseline_is_best_f1() {
        let views = Dataset::generate().subset_views();
        let ins = run_baseline(&views);
        for (_, s) in surrogates(&views) {
            for p in [PromptStrategy::P1, PromptStrategy::P2, PromptStrategy::P3] {
                let (c, _) = run_detection(&s, p, &views);
                assert!(
                    ins.f1() > c.f1(),
                    "traditional tool must beat every LLM (paper §4.4): {} vs {}",
                    ins.f1(),
                    c.f1()
                );
            }
        }
    }
}
