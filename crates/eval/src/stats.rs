//! Paired significance testing for model comparisons.
//!
//! The paper reports point metrics only; a production evaluation harness
//! should also say whether "GPT-4 beats GPT-3.5" survives the 198-sample
//! noise. [`mcnemar_exact`] implements the exact (binomial) McNemar test
//! on paired correct/incorrect outcomes — the standard test for two
//! classifiers evaluated on the same items.

use serde::{Deserialize, Serialize};

/// Discordant-pair counts for two classifiers A and B on the same items.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairedOutcomes {
    /// Items both classified correctly.
    pub both_right: u32,
    /// A right, B wrong.
    pub a_only: u32,
    /// B right, A wrong.
    pub b_only: u32,
    /// Both wrong.
    pub both_wrong: u32,
}

impl PairedOutcomes {
    /// Tally from paired (a_correct, b_correct) observations.
    pub fn tally(pairs: impl IntoIterator<Item = (bool, bool)>) -> PairedOutcomes {
        let mut o = PairedOutcomes::default();
        for (a, b) in pairs {
            match (a, b) {
                (true, true) => o.both_right += 1,
                (true, false) => o.a_only += 1,
                (false, true) => o.b_only += 1,
                (false, false) => o.both_wrong += 1,
            }
        }
        o
    }

    /// Total items.
    pub fn total(&self) -> u32 {
        self.both_right + self.a_only + self.b_only + self.both_wrong
    }
}

/// log(n!) via the log-gamma series (adequate for n ≤ a few thousand).
fn ln_factorial(n: u32) -> f64 {
    (1..=n as u64).map(|k| (k as f64).ln()).sum()
}

fn ln_choose(n: u32, k: u32) -> f64 {
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Exact McNemar test: two-sided p-value for the hypothesis that the two
/// classifiers have equal error rates, computed from the discordant
/// pairs (binomial with p = 1/2).
pub fn mcnemar_exact(o: &PairedOutcomes) -> f64 {
    let n = o.a_only + o.b_only;
    if n == 0 {
        return 1.0;
    }
    let k = o.a_only.min(o.b_only);
    // P(X ≤ k) for X ~ Binomial(n, 1/2), doubled (two-sided), capped at 1.
    let ln_half_n = -(n as f64) * std::f64::consts::LN_2;
    let mut tail = 0.0;
    for i in 0..=k {
        tail += (ln_choose(n, i) + ln_half_n).exp();
    }
    (2.0 * tail).min(1.0)
}

/// Convenience: compare two prediction vectors against shared truths.
pub fn compare_classifiers(
    truths: &[bool],
    preds_a: &[bool],
    preds_b: &[bool],
) -> (PairedOutcomes, f64) {
    assert_eq!(truths.len(), preds_a.len());
    assert_eq!(truths.len(), preds_b.len());
    let o = PairedOutcomes::tally(
        truths
            .iter()
            .zip(preds_a.iter().zip(preds_b))
            .map(|(t, (a, b))| (a == t, b == t)),
    );
    let p = mcnemar_exact(&o);
    (o, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_classifiers_p_is_one() {
        let o = PairedOutcomes { both_right: 80, a_only: 0, b_only: 0, both_wrong: 20 };
        assert_eq!(mcnemar_exact(&o), 1.0);
    }

    #[test]
    fn balanced_discordance_not_significant() {
        let o = PairedOutcomes { both_right: 50, a_only: 10, b_only: 10, both_wrong: 30 };
        assert!(mcnemar_exact(&o) > 0.5);
    }

    #[test]
    fn lopsided_discordance_significant() {
        let o = PairedOutcomes { both_right: 50, a_only: 25, b_only: 2, both_wrong: 21 };
        assert!(mcnemar_exact(&o) < 0.001, "{}", mcnemar_exact(&o));
    }

    #[test]
    fn known_small_case() {
        // a_only = 5, b_only = 1 → n=6, k=1: p = 2·(C(6,0)+C(6,1))/2^6
        //  = 2·(1+6)/64 = 0.21875.
        let o = PairedOutcomes { both_right: 0, a_only: 5, b_only: 1, both_wrong: 0 };
        assert!((mcnemar_exact(&o) - 0.21875).abs() < 1e-9);
    }

    #[test]
    fn tally_counts() {
        let o = PairedOutcomes::tally([(true, true), (true, false), (false, true), (false, false)]);
        assert_eq!(o, PairedOutcomes { both_right: 1, a_only: 1, b_only: 1, both_wrong: 1 });
        assert_eq!(o.total(), 4);
    }

    #[test]
    fn gpt4_vs_gpt35_on_the_corpus_is_significant() {
        // The calibrated gap (F1 .751 vs .597 over 198 items) should be
        // statistically detectable.
        let views = drb_ml::Dataset::generate().subset_views();
        let g4 = llm::Surrogate::new(llm::ModelKind::Gpt4, &views);
        let g3 = llm::Surrogate::new(llm::ModelKind::Gpt35Turbo, &views);
        let truths: Vec<bool> = views.iter().map(|v| v.race).collect();
        let pa: Vec<bool> =
            views.iter().map(|v| g4.predict(v, llm::PromptStrategy::P1)).collect();
        let pb: Vec<bool> =
            views.iter().map(|v| g3.predict(v, llm::PromptStrategy::P1)).collect();
        let (o, p) = compare_classifiers(&truths, &pa, &pb);
        assert!(o.total() == 198);
        assert!(p < 0.01, "GPT-4 vs GPT-3.5 p = {p}");
        // And SC p1 vs SC p2 (63 vs 62 TPs) should NOT be significant.
        let sc = llm::Surrogate::new(llm::ModelKind::StarChatBeta, &views);
        let p1: Vec<bool> =
            views.iter().map(|v| sc.predict(v, llm::PromptStrategy::P1)).collect();
        let p2: Vec<bool> =
            views.iter().map(|v| sc.predict(v, llm::PromptStrategy::P2)).collect();
        let (_, p) = compare_classifiers(&truths, &p1, &p2);
        assert!(p > 0.05, "SC p1 vs p2 p = {p}");
    }
}
