//! LLM output parsing (the paper's §4.5 "Natural Language Output
//! Processing" challenge).
//!
//! Responses arrive as free text, well-formed JSON, or something in
//! between. The pipeline therefore parses in layers: (1) leading
//! yes/no extraction with keyword fallback; (2) strict JSON pair
//! extraction; (3) a hand-rolled pattern scanner (the "regular
//! expressions" the authors fell back to) for prose and malformed JSON.
//! Parsing never panics — malformed input degrades to `None`s.

use serde::{Deserialize, Serialize};

/// Detection verdict extracted from a response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The model asserts a race.
    Yes,
    /// The model asserts no race.
    No,
    /// Could not extract a verdict.
    Unknown,
}

/// Extract the yes/no verdict.
pub fn parse_verdict(response: &str) -> Verdict {
    let t = response.trim().to_lowercase();
    // Layer 1: leading token.
    for prefix in ["yes", "**yes", "\"yes"] {
        if t.starts_with(prefix) {
            return Verdict::Yes;
        }
    }
    for prefix in ["no", "**no", "\"no"] {
        if t.starts_with(prefix) {
            return Verdict::No;
        }
    }
    // Layer 2: keyword scan (first clear signal wins).
    let yes_markers = [
        "there is a data race",
        "exhibits a data race",
        "exhibits data race",
        "contains a data race",
        "data race is present",
        "potential data race",
        "race condition exists",
        "\"data_race\": 1",
    ];
    let no_markers = [
        "no data race",
        "does not contain a data race",
        "free of data races",
        "not contain any data race",
        "iterations are independent",
        "\"data_race\": 0",
    ];
    let yes_pos = yes_markers.iter().filter_map(|m| t.find(m)).min();
    let no_pos = no_markers.iter().filter_map(|m| t.find(m)).min();
    match (yes_pos, no_pos) {
        (Some(y), Some(n)) => {
            if y <= n {
                Verdict::Yes
            } else {
                Verdict::No
            }
        }
        (Some(_), None) => Verdict::Yes,
        (None, Some(_)) => Verdict::No,
        (None, None) => Verdict::Unknown,
    }
}

/// A parsed variable pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParsedPair {
    /// Variable names (usually two).
    pub names: Vec<String>,
    /// Line numbers.
    pub lines: Vec<u32>,
    /// Operations (`"write"`/`"read"`).
    pub ops: Vec<String>,
}

/// Extract variable-pair info from a response: strict JSON first, then
/// the fallback scanner.
pub fn parse_pairs(response: &str) -> Option<ParsedPair> {
    parse_pairs_json(response).or_else(|| parse_pairs_fallback(response))
}

/// Strict layer: find a JSON object and deserialize the known keys.
fn parse_pairs_json(response: &str) -> Option<ParsedPair> {
    let start = response.find('{')?;
    let end = response.rfind('}')?;
    if end <= start {
        return None;
    }
    #[derive(Deserialize)]
    struct Wire {
        #[serde(default)]
        variable_names: Vec<String>,
        #[serde(default)]
        variable_locations: Vec<u32>,
        #[serde(default)]
        operation_types: Vec<String>,
    }
    let w: Wire = serde_json::from_str(&response[start..=end]).ok()?;
    if w.variable_names.is_empty() {
        return None;
    }
    Some(ParsedPair {
        names: w.variable_names,
        lines: w.variable_locations,
        ops: w.operation_types.iter().map(|o| normalize_op(o)).collect(),
    })
}

/// Fallback layer: scan quoted strings after the known keys, numbers
/// after location keys, and prose like `variable 'x' at line 9`.
fn parse_pairs_fallback(response: &str) -> Option<ParsedPair> {
    // Malformed-JSON path: key-driven scanning.
    if let Some(names) = scan_string_list(response, "variable_names") {
        let lines = scan_number_list(response, "variable_locations").unwrap_or_default();
        let ops = scan_string_list(response, "operation_types")
            .unwrap_or_default()
            .iter()
            .map(|o| normalize_op(o))
            .collect();
        return Some(ParsedPair { names, lines, ops });
    }
    // Prose path: "variable 'x' at line 9 … variable 'y' at line 12".
    let mut names = Vec::new();
    let mut lines = Vec::new();
    let lower = response.to_lowercase();
    let mut cursor = 0;
    while let Some(pos) = lower[cursor..].find("variable '") {
        let abs = cursor + pos + "variable '".len();
        let Some(endq) = response[abs..].find('\'') else { break };
        names.push(response[abs..abs + endq].to_string());
        // Look for "line <num>" after the name.
        let after = &lower[abs + endq..];
        if let Some(lp) = after.find("line") {
            let digits: String = after[lp + 4..]
                .chars()
                .skip_while(|c| !c.is_ascii_digit())
                .take_while(|c| c.is_ascii_digit())
                .collect();
            if let Ok(n) = digits.parse() {
                lines.push(n);
            }
        }
        cursor = abs + endq;
    }
    if names.is_empty() {
        return None;
    }
    // Prose ops: look for read/write mentions in order.
    let mut ops = Vec::new();
    for marker in ["first access is a ", "second is a ", "second access is a "] {
        if let Some(p) = lower.find(marker) {
            let rest = &lower[p + marker.len()..];
            if rest.starts_with("write") {
                ops.push("write".to_string());
            } else if rest.starts_with("read") {
                ops.push("read".to_string());
            }
        }
    }
    if ops.is_empty() {
        let w = lower.matches("write").count();
        let r = lower.matches("read").count();
        if w > 0 || r > 0 {
            // Ambiguous; note both as unknown-but-present.
            ops = vec!["write".to_string(); w.min(2)];
            ops.extend(vec!["read".to_string(); r.min(2usize.saturating_sub(ops.len()))]);
        }
    }
    Some(ParsedPair { names, lines, ops })
}

fn normalize_op(o: &str) -> String {
    let l = o.trim().to_lowercase();
    if l.starts_with('w') {
        "write".to_string()
    } else if l.starts_with('r') {
        "read".to_string()
    } else {
        l
    }
}

/// Scan `"key": [ "a[i]", "b" ]` lists without requiring valid JSON.
/// Quote-aware: `]` inside a quoted string (array subscripts!) does not
/// terminate the list.
fn scan_string_list(text: &str, key: &str) -> Option<Vec<String>> {
    let kpos = text.find(key)?;
    let rest = &text[kpos + key.len()..];
    let open = rest.find('[')?;
    let mut out = Vec::new();
    let mut in_string = false;
    let mut cur = String::new();
    for c in rest[open + 1..].chars() {
        if in_string {
            if c == '"' {
                in_string = false;
                out.push(std::mem::take(&mut cur));
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            in_string = true;
        } else if c == ']' {
            break;
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// Scan `"key": [ 12, 14 ]` numeric lists.
fn scan_number_list(text: &str, key: &str) -> Option<Vec<u32>> {
    let kpos = text.find(key)?;
    let rest = &text[kpos + key.len()..];
    let open = rest.find('[')?;
    let close = rest[open..].find(']')? + open;
    let body = &rest[open + 1..close];
    let mut out = Vec::new();
    let mut digits = String::new();
    for c in body.chars() {
        if c.is_ascii_digit() {
            digits.push(c);
        } else if !digits.is_empty() {
            out.push(digits.parse().ok()?);
            digits.clear();
        }
    }
    if !digits.is_empty() {
        out.push(digits.parse().ok()?);
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leading_verdicts() {
        assert_eq!(parse_verdict("Yes."), Verdict::Yes);
        assert_eq!(parse_verdict("no — the loop is clean"), Verdict::No);
        assert_eq!(parse_verdict("  YES, definitely"), Verdict::Yes);
    }

    #[test]
    fn keyword_fallback() {
        assert_eq!(
            parse_verdict("After careful analysis, there is a data race on x."),
            Verdict::Yes
        );
        assert_eq!(
            parse_verdict("I examined the loop; it is free of data races."),
            Verdict::No
        );
        assert_eq!(parse_verdict("I cannot tell."), Verdict::Unknown);
    }

    #[test]
    fn json_pairs_parse() {
        let resp = "yes\n{\n  \"data_race\": 1,\n  \"variable_names\": [\"a[i]\", \"a[i + 1]\"],\n  \"variable_locations\": [14, 14],\n  \"operation_types\": [\"write\", \"read\"]\n}";
        let p = parse_pairs(resp).unwrap();
        assert_eq!(p.names, vec!["a[i]", "a[i + 1]"]);
        assert_eq!(p.lines, vec![14, 14]);
        assert_eq!(p.ops, vec!["write", "read"]);
    }

    #[test]
    fn malformed_json_falls_back() {
        // Unquoted key + trailing comma: serde_json fails, scanner works.
        let resp = "yes\n{\n  data_race: 1,\n  \"variable_names\": [\"x\", \"x\"],\n  \"variable_locations\": [9, 26],\n  \"operation_types\": [\"write\", \"write\"],\n}";
        let p = parse_pairs(resp).unwrap();
        assert_eq!(p.names, vec!["x", "x"]);
        assert_eq!(p.lines, vec![9, 26]);
    }

    #[test]
    fn prose_pairs_parse() {
        // Listing-3 style response.
        let resp = "Yes, the provided code exhibits data race issues. The data race is caused by the variable 'x' at line 9 and the variable 'x' at line 26. The first access is a write and the second is a write.";
        let p = parse_pairs(resp).unwrap();
        assert_eq!(p.names, vec!["x", "x"]);
        assert_eq!(p.lines, vec![9, 26]);
        assert_eq!(p.ops[0], "write");
    }

    #[test]
    fn garbage_never_panics() {
        for junk in ["", "{{{{", "][", "yes {\"variable_names\": [}", "∀x∃y"] {
            let _ = parse_verdict(junk);
            let _ = parse_pairs(junk);
        }
    }

    #[test]
    fn no_pairs_in_refusal() {
        assert_eq!(parse_pairs("No, I did not find any data race in this code."), None);
    }
}
