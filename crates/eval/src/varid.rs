//! Variable-identification experiments (S2/S3).
//!
//! A response counts as a true positive only when the pair info is
//! *fully* correct — names, line numbers, and operations (§4.3's strict
//! standard, which is why Table 5's scores collapse to 0.06–0.19).

use crate::metrics::Confusion;
use crate::par::{default_workers, par_map};
use crate::parse::{parse_pairs, ParsedPair};
use llm::{KernelView, Surrogate};

/// Normalize an lvalue text for comparison (whitespace-insensitive).
fn norm(s: &str) -> String {
    s.chars().filter(|c| !c.is_whitespace()).collect()
}

/// Does a parsed response exactly match some ground-truth pair?
pub fn pair_matches(parsed: &ParsedPair, k: &KernelView) -> bool {
    if parsed.names.len() < 2 || parsed.lines.len() < 2 || parsed.ops.len() < 2 {
        return false;
    }
    let cand = [
        (
            norm(&parsed.names[0]),
            parsed.lines[0],
            parsed.ops[0].as_str(),
            norm(&parsed.names[1]),
            parsed.lines[1],
            parsed.ops[1].as_str(),
        ),
        // Allow the two sides in either order.
        (
            norm(&parsed.names[1]),
            parsed.lines[1],
            parsed.ops[1].as_str(),
            norm(&parsed.names[0]),
            parsed.lines[0],
            parsed.ops[0].as_str(),
        ),
    ];
    k.pairs.iter().any(|p| {
        let truth = (
            norm(&p.names.0),
            p.lines.0,
            p.ops.0.as_str(),
            norm(&p.names.1),
            p.lines.1,
            p.ops.1.as_str(),
        );
        cand.iter().any(|c| {
            c.0 == truth.0
                && c.1 == truth.1
                && c.2 == truth.2
                && c.3 == truth.3
                && c.4 == truth.4
                && c.5 == truth.5
        })
    })
}

/// How much of the pair information matched (the paper's S2 vs S3
/// scenarios: S2 = the right variables, S3 = full name/line/operation
/// detail).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchLevel {
    /// Nothing matched (or no pairs given).
    #[default]
    None,
    /// Variable names match some ground-truth pair (S2).
    NamesOnly,
    /// Names, lines, and operations all match (S3).
    Full,
}

/// Classify a parsed response against the ground truth.
pub fn match_level(parsed: &ParsedPair, k: &KernelView) -> MatchLevel {
    if pair_matches(parsed, k) {
        return MatchLevel::Full;
    }
    if parsed.names.len() >= 2 {
        let c0 = norm(&parsed.names[0]);
        let c1 = norm(&parsed.names[1]);
        let names_match = k.pairs.iter().any(|p| {
            let t0 = norm(&p.names.0);
            let t1 = norm(&p.names.1);
            (c0 == t0 && c1 == t1) || (c0 == t1 && c1 == t0)
        });
        if names_match {
            return MatchLevel::NamesOnly;
        }
    }
    MatchLevel::None
}

use serde::{Deserialize, Serialize};

/// One kernel's var-id exchange.
#[derive(Debug, Clone, Default)]
pub struct VarIdExchange {
    /// Kernel id.
    pub id: u32,
    /// Raw response.
    pub response: String,
    /// Whether the response contained pair info at all.
    pub gave_pairs: bool,
    /// Whether that info matched the ground truth exactly.
    pub fully_correct: bool,
    /// Ground truth.
    pub truth: bool,
}

/// Run variable identification scored at both S2 (names) and S3 (full
/// detail) levels. Returns `(s2, s3)` confusions.
pub fn run_varid_levels(surrogate: &Surrogate, views: &[KernelView]) -> (Confusion, Confusion) {
    let levels = par_map(views, default_workers(), |k| {
        let response = surrogate.answer_varid(k);
        let parsed = parse_pairs(&response);
        let gave = parsed.is_some();
        let level = parsed.as_ref().map(|p| match_level(p, k)).unwrap_or(MatchLevel::None);
        (k.race, gave, level)
    });
    let mut s2 = Confusion::default();
    let mut s3 = Confusion::default();
    for (race, gave, level) in levels {
        if race {
            if level == MatchLevel::Full {
                s3.tp += 1;
            } else {
                s3.fn_ += 1;
            }
            if level != MatchLevel::None {
                s2.tp += 1;
            } else {
                s2.fn_ += 1;
            }
        } else {
            if gave {
                s2.fp += 1;
                s3.fp += 1;
            } else {
                s2.tn += 1;
                s3.tn += 1;
            }
        }
    }
    (s2, s3)
}

/// Run variable identification for one model over a subset.
///
/// Cells per the paper's Table-5 definitions: TP = race-yes with fully
/// correct pair info; TN = race-no without invented pair info.
pub fn run_varid(surrogate: &Surrogate, views: &[KernelView]) -> (Confusion, Vec<VarIdExchange>) {
    let exchanges = par_map(views, default_workers(), |k| {
        let response = surrogate.answer_varid(k);
        let parsed = parse_pairs(&response);
        let gave_pairs = parsed.is_some();
        let fully_correct = parsed.as_ref().is_some_and(|p| pair_matches(p, k));
        VarIdExchange { id: k.id, response, gave_pairs, fully_correct, truth: k.race }
    });
    let mut c = Confusion::default();
    for e in &exchanges {
        if e.truth {
            if e.fully_correct {
                c.tp += 1;
            } else {
                c.fn_ += 1;
            }
        } else if e.gave_pairs {
            c.fp += 1;
        } else {
            c.tn += 1;
        }
    }
    (c, exchanges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use drb_ml::Dataset;
    use llm::{ModelKind, PairView};

    fn kv(pairs: Vec<PairView>) -> KernelView {
        KernelView::new(1, String::new(), true, pairs, 0.5)
    }

    #[test]
    fn exact_match_required() {
        let truth = PairView {
            names: ("a[i + 1]".into(), "a[i]".into()),
            lines: (7, 7),
            ops: ("read".into(), "write".into()),
        };
        let k = kv(vec![truth]);
        let good = ParsedPair {
            names: vec!["a[i+1]".into(), "a[i]".into()], // whitespace-insensitive
            lines: vec![7, 7],
            ops: vec!["read".into(), "write".into()],
        };
        assert!(pair_matches(&good, &k));
        let wrong_line = ParsedPair {
            names: vec!["a[i+1]".into(), "a[i]".into()],
            lines: vec![8, 7],
            ops: vec!["read".into(), "write".into()],
        };
        assert!(!pair_matches(&wrong_line, &k));
        let wrong_op = ParsedPair {
            names: vec!["a[i+1]".into(), "a[i]".into()],
            lines: vec![7, 7],
            ops: vec!["write".into(), "write".into()],
        };
        assert!(!pair_matches(&wrong_op, &k));
    }

    #[test]
    fn order_insensitive() {
        let truth = PairView {
            names: ("x".into(), "y".into()),
            lines: (3, 5),
            ops: ("write".into(), "read".into()),
        };
        let k = kv(vec![truth]);
        let swapped = ParsedPair {
            names: vec!["y".into(), "x".into()],
            lines: vec![5, 3],
            ops: vec!["read".into(), "write".into()],
        };
        assert!(pair_matches(&swapped, &k));
    }

    #[test]
    fn varid_counts_match_calibration() {
        let views = Dataset::generate().subset_views();
        let s = Surrogate::new(ModelKind::Gpt4, &views);
        let (c, _) = run_varid(&s, &views);
        assert_eq!(c.tp + c.fn_, 100);
        assert_eq!(c.fp + c.tn, 98);
        // Paper Table 5, GPT4: TP 14, TN 67 (small tolerance: the pair
        // matcher is strict and parsing is lossy by design).
        assert!((c.tp as i64 - 14).abs() <= 2, "{c}");
        assert!((c.tn as i64 - 67).abs() <= 2, "{c}");
    }
}

#[cfg(test)]
mod level_tests {
    use super::*;
    use drb_ml::Dataset;
    use llm::ModelKind;

    #[test]
    fn s2_dominates_s3() {
        // Getting the names right is strictly easier than full detail —
        // the paper's §4.3 point that line numbers are where models fail.
        let views = Dataset::generate().subset_views();
        for m in ModelKind::ALL {
            let s = Surrogate::new(m, &views);
            let (s2, s3) = run_varid_levels(&s, &views);
            assert!(s2.tp >= s3.tp, "{m:?}: S2 {s2} vs S3 {s3}");
            assert!(s2.f1() >= s3.f1(), "{m:?}");
        }
    }

    #[test]
    fn s3_equals_table5_definition() {
        let views = Dataset::generate().subset_views();
        let s = Surrogate::new(ModelKind::Gpt4, &views);
        let (_, s3) = run_varid_levels(&s, &views);
        let (t5, _) = run_varid(&s, &views);
        assert_eq!(s3, t5);
    }

    #[test]
    fn names_only_classified_correctly() {
        let truth = llm::PairView {
            names: ("a[i]".into(), "a[i + 1]".into()),
            lines: (7, 7),
            ops: ("write".into(), "read".into()),
        };
        let k = KernelView::new(1, String::new(), true, vec![truth], 0.5);
        let wrong_lines = ParsedPair {
            names: vec!["a[i]".into(), "a[i+1]".into()],
            lines: vec![9, 9],
            ops: vec!["write".into(), "read".into()],
        };
        assert_eq!(match_level(&wrong_lines, &k), MatchLevel::NamesOnly);
        let all_wrong = ParsedPair {
            names: vec!["q".into(), "z".into()],
            lines: vec![9, 9],
            ops: vec!["write".into(), "read".into()],
        };
        assert_eq!(match_level(&all_wrong, &k), MatchLevel::None);
    }
}
