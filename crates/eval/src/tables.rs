//! Experiment runners: one function per paper table.
//!
//! Every runner returns structured rows *and* can format itself the way
//! the paper prints it, so `cargo run -p bench --bin tables` regenerates
//! the artifacts and EXPERIMENTS.md can diff them against the published
//! values.

use crate::detection::{run_baseline, run_detection};
use crate::metrics::Confusion;
use crate::varid::run_varid;
use drb_ml::Dataset;
use finetune::{folds_for, mean, std_dev, FineTuned, TrainConfig};
use llm::{KernelView, ModelKind, PromptStrategy, Surrogate, VarIdOutcome};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A detection-table row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectionRow {
    /// Row label (`Ins`, `GPT3`, …).
    pub model: String,
    /// Prompt label (`N/A`, `p1`, …).
    pub prompt: String,
    /// Confusion cells + metrics.
    pub confusion: Confusion,
}

impl DetectionRow {
    fn fmt_row(&self) -> String {
        let c = &self.confusion;
        format!(
            "| {:5} | {:6} | {:3} | {:3} | {:3} | {:3} | {:.3} | {:.3} | {:.3} |",
            self.model,
            self.prompt,
            c.tp,
            c.fp,
            c.tn,
            c.fn_,
            c.recall(),
            c.precision(),
            c.f1()
        )
    }
}

/// A cross-validation summary row (Tables 4 and 6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvRow {
    /// Row label (`SC`, `SC-FT`, …).
    pub model: String,
    /// Mean recall across folds.
    pub avg_r: f64,
    /// SD of recall.
    pub sd_r: f64,
    /// Mean precision.
    pub avg_p: f64,
    /// SD of precision.
    pub sd_p: f64,
    /// Mean F1.
    pub avg_f1: f64,
    /// SD of F1.
    pub sd_f1: f64,
}

impl CvRow {
    fn from_folds(model: &str, folds: &[Confusion]) -> CvRow {
        let rs: Vec<f64> = folds.iter().map(Confusion::recall).collect();
        let ps: Vec<f64> = folds.iter().map(Confusion::precision).collect();
        let f1s: Vec<f64> = folds.iter().map(Confusion::f1).collect();
        CvRow {
            model: model.to_string(),
            avg_r: mean(&rs),
            sd_r: std_dev(&rs),
            avg_p: mean(&ps),
            sd_p: std_dev(&ps),
            avg_f1: mean(&f1s),
            sd_f1: std_dev(&f1s),
        }
    }

    fn fmt_row(&self) -> String {
        format!(
            "| {:6} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |",
            self.model, self.avg_r, self.sd_r, self.avg_p, self.sd_p, self.avg_f1, self.sd_f1
        )
    }
}

/// The cached evaluation-subset views every table runner shares. Built
/// once per process; each view carries its analysis artifact.
pub fn corpus_views() -> &'static [KernelView] {
    static VIEWS: OnceLock<Vec<KernelView>> = OnceLock::new();
    VIEWS.get_or_init(|| Dataset::generate().subset_views())
}

/// The calibrated surrogates every table runner shares — one
/// `Surrogate` per model, reused across all prompt strategies and all
/// tables (calibration is deterministic in the corpus, so reuse cannot
/// change any cell).
pub fn corpus_surrogates() -> &'static [(ModelKind, Surrogate)] {
    static SURROGATES: OnceLock<Vec<(ModelKind, Surrogate)>> = OnceLock::new();
    SURROGATES.get_or_init(|| crate::detection::surrogates(corpus_views()))
}

fn surrogate(m: ModelKind) -> &'static Surrogate {
    &corpus_surrogates().iter().find(|(k, _)| *k == m).expect("all models calibrated").1
}

/// Table 2 — GPT-3.5-turbo with basic prompts BP1/BP2.
pub fn table2() -> Vec<DetectionRow> {
    let vs = corpus_views();
    let s = surrogate(ModelKind::Gpt35Turbo);
    [PromptStrategy::Bp1, PromptStrategy::Bp2]
        .into_iter()
        .map(|p| DetectionRow {
            model: "GPT3".into(),
            prompt: p.label().into(),
            confusion: run_detection(s, p, vs).0,
        })
        .collect()
}

/// Table 3 — Inspector baseline + four LLMs × {p1, p2, p3}.
pub fn table3() -> Vec<DetectionRow> {
    let vs = corpus_views();
    let mut rows = vec![DetectionRow {
        model: "Ins".into(),
        prompt: "N/A".into(),
        confusion: run_baseline(vs),
    }];
    for m in ModelKind::ALL {
        let s = surrogate(m);
        for p in [PromptStrategy::P1, PromptStrategy::P2, PromptStrategy::P3] {
            rows.push(DetectionRow {
                model: m.short().into(),
                prompt: p.label().into(),
                confusion: run_detection(s, p, vs).0,
            });
        }
    }
    rows
}

/// Table 5 — variable identification, four LLMs.
pub fn table5() -> Vec<DetectionRow> {
    let vs = corpus_views();
    ModelKind::ALL
        .iter()
        .map(|&m| DetectionRow {
            model: m.short().into(),
            prompt: "varid".into(),
            confusion: run_varid(surrogate(m), vs).0,
        })
        .collect()
}

/// The open-weight models fine-tuned under CV (paper §4.3), in table
/// row order.
const CV_MODELS: [ModelKind; 2] = [ModelKind::StarChatBeta, ModelKind::Llama2_7b];

/// Fold seed shared by Tables 4 and 6 — same folds, same adapters.
const CV_SEED: u64 = 20230915;

/// Record a var-id outcome into a confusion matrix.
fn record_varid(c: &mut Confusion, race: bool, outcome: VarIdOutcome) {
    match (race, outcome) {
        (true, VarIdOutcome::CorrectPairs) => c.tp += 1,
        (true, _) => c.fn_ += 1,
        (false, VarIdOutcome::NoPairs) => c.tn += 1,
        (false, _) => c.fp += 1,
    }
}

/// Per-fold detection confusion for the base (pre-trained) surrogate
/// (memoized predictions — the trainer already asked for every one).
fn cv_base_detection(s: &Surrogate, vs: &[KernelView], folds: &[finetune::Fold]) -> Vec<Confusion> {
    folds
        .iter()
        .map(|fold| {
            let mut c = Confusion::default();
            for &i in &fold.test {
                c.record(vs[i].race, s.predict_memo(&vs[i], PromptStrategy::P1));
            }
            c
        })
        .collect()
}

/// Per-fold var-id confusion for the base surrogate.
fn cv_base_varid(s: &Surrogate, vs: &[KernelView], folds: &[finetune::Fold]) -> Vec<Confusion> {
    folds
        .iter()
        .map(|fold| {
            let mut c = Confusion::default();
            for &i in &fold.test {
                record_varid(&mut c, vs[i].race, s.varid_outcome(&vs[i]));
            }
            c
        })
        .collect()
}

/// One fine-tuning job's outcome: detection (Table 4) and var-id
/// (Table 6) confusions on the fold's validation split, both evaluated
/// from the **same** trained adapter — the two tables share folds, fold
/// seed, and training config, so training once per (model, fold) halves
/// the total training work.
struct FtFoldEval {
    det: Confusion,
    varid: Confusion,
}

fn ft_fold_eval(
    s: &Surrogate,
    vs: &[KernelView],
    fold: &finetune::Fold,
    cfg: &TrainConfig,
) -> FtFoldEval {
    let ft = FineTuned::train_on(s, vs, &fold.train, cfg);
    let mut det = Confusion::default();
    let mut varid = Confusion::default();
    for &i in &fold.test {
        let k = &vs[i];
        det.record(k.race, ft.predict(s, k));
        record_varid(&mut varid, k.race, finetune::varid_outcome_finetuned(&ft, s, k));
    }
    FtFoldEval { det, varid }
}

/// Build Tables 4 and 6 together with an explicit worker count: the
/// 2 models × 5 folds fine-tuning jobs fan out over [`par::par_map`].
/// Each job owns a deterministic RNG stream seeded only by the training
/// config, and `par_map` is order-preserving, so the rows are
/// byte-identical at every worker count (proved by the equivalence
/// tests at 1 and 8 workers).
pub fn cv_tables_with_workers(workers: usize) -> (Vec<CvRow>, Vec<CvRow>) {
    let vs = corpus_views();
    let folds = folds_for(vs, 5, CV_SEED);
    let jobs: Vec<(ModelKind, usize)> =
        CV_MODELS.iter().flat_map(|&m| (0..folds.len()).map(move |f| (m, f))).collect();
    let evals: Vec<FtFoldEval> = par::par_map(&jobs, workers, |&(m, f)| {
        ft_fold_eval(surrogate(m), vs, &folds[f], &TrainConfig::for_model(m))
    });

    let mut det_rows = Vec::new();
    let mut varid_rows = Vec::new();
    for (mi, m) in CV_MODELS.iter().enumerate() {
        let s = surrogate(*m);
        let ft: &[FtFoldEval] = &evals[mi * folds.len()..(mi + 1) * folds.len()];
        det_rows.push(CvRow::from_folds(m.short(), &cv_base_detection(s, vs, &folds)));
        det_rows.push(CvRow::from_folds(
            &format!("{}-FT", m.short()),
            &ft.iter().map(|e| e.det).collect::<Vec<_>>(),
        ));
        varid_rows.push(CvRow::from_folds(m.short(), &cv_base_varid(s, vs, &folds)));
        varid_rows.push(CvRow::from_folds(
            &format!("{}-FT", m.short()),
            &ft.iter().map(|e| e.varid).collect::<Vec<_>>(),
        ));
    }
    (det_rows, varid_rows)
}

/// Both CV tables, built once per process (they are deterministic in
/// the corpus; every caller after the first gets the cached rows).
fn cv_tables_cached() -> &'static (Vec<CvRow>, Vec<CvRow>) {
    static TABLES: OnceLock<(Vec<CvRow>, Vec<CvRow>)> = OnceLock::new();
    TABLES.get_or_init(|| cv_tables_with_workers(par::default_workers()))
}

/// Table 4 — 5-fold CV, detection, StarChat-β and Llama2-7b ± FT.
pub fn table4() -> Vec<CvRow> {
    cv_tables_cached().0.clone()
}

/// Table 6 — 5-fold CV, variable identification, ± FT.
pub fn table6() -> Vec<CvRow> {
    cv_tables_cached().1.clone()
}

/// Pre-PR Table 4: the serial reference path kept for differential
/// tests and the `BENCH_finetune.json` baseline — per-fold cloned
/// training sets, the allocating two-optimizer trainer, uncached
/// surrogate predictions, and a separate training run per table.
pub fn table4_serial_reference() -> Vec<CvRow> {
    let vs = corpus_views();
    let folds = folds_for(vs, 5, CV_SEED);
    let mut rows = Vec::new();
    for m in CV_MODELS {
        let s = surrogate(m);
        let cfg = TrainConfig::for_model(m);
        let base: Vec<Confusion> = folds
            .iter()
            .map(|fold| {
                let mut c = Confusion::default();
                for &i in &fold.test {
                    c.record(vs[i].race, s.predict(&vs[i], PromptStrategy::P1));
                }
                c
            })
            .collect();
        let ft: Vec<Confusion> = folds
            .iter()
            .map(|fold| {
                let train: Vec<KernelView> = fold.train.iter().map(|&i| vs[i].clone()).collect();
                let ft = FineTuned::train_reference(s, &train, &cfg);
                let mut c = Confusion::default();
                for &i in &fold.test {
                    c.record(vs[i].race, ft.predict(s, &vs[i]));
                }
                c
            })
            .collect();
        rows.push(CvRow::from_folds(m.short(), &base));
        rows.push(CvRow::from_folds(&format!("{}-FT", m.short()), &ft));
    }
    rows
}

/// Pre-PR Table 6 (see [`table4_serial_reference`]): retrains every
/// (model, fold) adapter from scratch instead of sharing Table 4's.
pub fn table6_serial_reference() -> Vec<CvRow> {
    let vs = corpus_views();
    let folds = folds_for(vs, 5, CV_SEED);
    let mut rows = Vec::new();
    for m in CV_MODELS {
        let s = surrogate(m);
        let cfg = TrainConfig::for_model(m);
        let base: Vec<Confusion> = folds
            .iter()
            .map(|fold| {
                let mut c = Confusion::default();
                for &i in &fold.test {
                    record_varid(&mut c, vs[i].race, s.varid_outcome(&vs[i]));
                }
                c
            })
            .collect();
        let ft: Vec<Confusion> = folds
            .iter()
            .map(|fold| {
                let train: Vec<KernelView> = fold.train.iter().map(|&i| vs[i].clone()).collect();
                let ft = FineTuned::train_reference(s, &train, &cfg);
                let mut c = Confusion::default();
                for &i in &fold.test {
                    record_varid(&mut c, vs[i].race, finetune::varid_outcome_finetuned(&ft, s, &vs[i]));
                }
                c
            })
            .collect();
        rows.push(CvRow::from_folds(m.short(), &base));
        rows.push(CvRow::from_folds(&format!("{}-FT", m.short()), &ft));
    }
    rows
}

/// Format detection rows as a paper-style markdown table.
pub fn format_detection_table(title: &str, rows: &[DetectionRow]) -> String {
    let mut s = format!("{title}\n");
    s.push_str("| Model | Prompt | TP  | FP  | TN  | FN  | R     | P     | F1    |\n");
    s.push_str("|-------|--------|-----|-----|-----|-----|-------|-------|-------|\n");
    for r in rows {
        s.push_str(&r.fmt_row());
        s.push('\n');
    }
    s
}

/// Format CV rows as a paper-style markdown table.
pub fn format_cv_table(title: &str, rows: &[CvRow]) -> String {
    let mut s = format!("{title}\n");
    s.push_str("| Model  | AVG R | SD R  | AVG P | SD P  | AVG F1 | SD F1 |\n");
    s.push_str("|--------|-------|-------|-------|-------|--------|-------|\n");
    for r in rows {
        s.push_str(&r.fmt_row());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_matches_paper() {
        let rows = table2();
        assert_eq!(rows.len(), 2);
        // BP1 beats BP2 on F1 (the paper's "greedy prompt" effect).
        assert!(rows[0].confusion.f1() > rows[1].confusion.f1());
        // Cells near the paper's: BP1 TP 66, BP2 TP 35 (±1).
        assert!((rows[0].confusion.tp as i64 - 66).abs() <= 1, "{:?}", rows[0]);
        assert!((rows[1].confusion.tp as i64 - 35).abs() <= 1, "{:?}", rows[1]);
    }

    #[test]
    fn table3_orderings_hold() {
        let rows = table3();
        assert_eq!(rows.len(), 13);
        let f1 = |m: &str, p: &str| {
            rows.iter().find(|r| r.model == m && r.prompt == p).unwrap().confusion.f1()
        };
        let ins = rows[0].confusion.f1();
        // Traditional tool beats every LLM.
        for r in &rows[1..] {
            assert!(ins > r.confusion.f1(), "{:?}", r);
        }
        // GPT-4 is the best LLM on every prompt.
        for p in ["p1", "p2", "p3"] {
            for m in ["GPT3", "SC", "LM"] {
                assert!(f1("GPT4", p) > f1(m, p), "GPT4 must beat {m} on {p}");
            }
        }
        // GPT-4 comes close to the tool (within 0.05 F1).
        assert!(ins - f1("GPT4", "p3") < 0.05);
    }

    /// The artifact cache must not shift a single table cell: rebuild
    /// Table 3 from freshly analyzed, uncached views and freshly
    /// calibrated surrogates (the pre-caching behaviour) and require the
    /// rows to be identical to the shared-cache path.
    #[test]
    fn table3_identical_with_fresh_uncached_views() {
        let cached = table3();
        // A cloned dataset is a different allocation, so `subset_views`
        // bypasses the canonical view cache and re-analyzes everything.
        let ds = Dataset::generate().clone();
        let vs = ds.subset_views();
        let mut fresh = vec![DetectionRow {
            model: "Ins".into(),
            prompt: "N/A".into(),
            confusion: run_baseline(&vs),
        }];
        for m in ModelKind::ALL {
            let s = Surrogate::new(m, &vs);
            for p in [PromptStrategy::P1, PromptStrategy::P2, PromptStrategy::P3] {
                fresh.push(DetectionRow {
                    model: m.short().into(),
                    prompt: p.label().into(),
                    confusion: run_detection(&s, p, &vs).0,
                });
            }
        }
        assert_eq!(fresh, cached);
    }

    #[test]
    fn table5_gpt4_best() {
        let rows = table5();
        assert_eq!(rows.len(), 4);
        let gpt4 = rows.iter().find(|r| r.model == "GPT4").unwrap().confusion.f1();
        for r in &rows {
            if r.model != "GPT4" {
                assert!(gpt4 > r.confusion.f1(), "{:?}", r);
            }
        }
        // All scores collapse below 0.25 (paper: 0.059–0.193).
        assert!(rows.iter().all(|r| r.confusion.f1() < 0.25));
    }
}
