//! Sweep parallelism, re-exported from the `par` workspace crate.
//!
//! The chunked work-stealing `par_map` started life here; once the
//! dynamic oracle needed it too (schedule-seed sweeps in
//! `hbsan::check_adversarial` and the `drb-gen` ground-truth runs) it
//! moved into the dependency-free `par` crate. This module keeps the
//! historical `eval::par_map` / `eval::default_workers` paths alive so
//! callers don't churn.

pub use ::par::{default_workers, par_map};

#[cfg(test)]
mod tests {
    use super::*;

    /// The re-export really is the shared implementation: order
    /// preserved and worker-count independent (the substantive behavior
    /// tests live in the `par` crate itself).
    #[test]
    fn reexport_is_live() {
        let items: Vec<u64> = (0..50).collect();
        let serial = par_map(&items, 1, |x| x * 3);
        let parallel = par_map(&items, 8, |x| x * 3);
        assert_eq!(serial, parallel);
        assert!(default_workers() >= 1);
    }
}
