//! Work-stealing-lite parallel map built on crossbeam scoped threads.
//!
//! Model × prompt × 198-kernel sweeps are embarrassingly parallel; this
//! helper fans work out over a small pool with an atomic work index
//! (dynamic scheduling — exactly the construct the corpus studies).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel map preserving input order.
pub fn par_map<T, U, F>(items: &[T], workers: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send + Default + Clone,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = workers.clamp(1, n.max(1));
    let mut out = vec![U::default(); n];
    if workers <= 1 || n <= 1 {
        for (i, item) in items.iter().enumerate() {
            out[i] = f(item);
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let out_slots: Vec<parking_lot::Mutex<Option<U>>> =
        (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let v = f(&items[i]);
                *out_slots[i].lock() = Some(v);
            });
        }
    })
    .expect("worker panicked");
    for (slot, dst) in out_slots.into_iter().zip(out.iter_mut()) {
        *dst = slot.into_inner().expect("every slot filled");
    }
    out
}

/// Reasonable worker count for sweeps.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).min(16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, 8, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_parallel() {
        let items: Vec<u64> = (0..100).collect();
        let a = par_map(&items, 1, |x| x + 7);
        let b = par_map(&items, 8, |x| x + 7);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input() {
        let items: Vec<u64> = vec![];
        let out: Vec<u64> = par_map(&items, 4, |x| *x);
        assert!(out.is_empty());
    }
}
