//! Classification metrics (paper §3.6: recall, precision, F1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: u32,
    /// False positives.
    pub fp: u32,
    /// True negatives.
    pub tn: u32,
    /// False negatives.
    #[serde(rename = "fn")]
    pub fn_: u32,
}

impl Confusion {
    /// Record one (truth, prediction) observation.
    pub fn record(&mut self, truth: bool, pred: bool) {
        match (truth, pred) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (false, false) => self.tn += 1,
            (true, false) => self.fn_ += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u32 {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// Recall = TP / (TP + FN).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            f64::from(self.tp) / f64::from(self.tp + self.fn_)
        }
    }

    /// Precision = TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            f64::from(self.tp) / f64::from(self.tp + self.fp)
        }
    }

    /// F1 = harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (r, p) = (self.recall(), self.precision());
        if r + p == 0.0 {
            0.0
        } else {
            2.0 * r * p / (r + p)
        }
    }

    /// Accuracy (not reported by the paper but useful for ablations).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            f64::from(self.tp + self.tn) / f64::from(self.total())
        }
    }

    /// Merge another matrix in.
    pub fn merge(&mut self, other: &Confusion) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.tn += other.tn;
        self.fn_ += other.fn_;
    }
}

/// A pairwise agreement matrix between several binary classifiers over
/// a shared item set (the `xcheck` differential harness records one
/// verdict vector per kernel: expected label + one verdict per
/// detector).
///
/// `Eq` is derived so deterministic sweeps can be compared whole.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Agreement {
    labels: Vec<String>,
    /// Flattened row-major n×n table; `agree[i*n+j]` counts items where
    /// classifier `i` and classifier `j` gave the same verdict.
    agree: Vec<u32>,
    total: u32,
}

impl Agreement {
    /// An empty matrix over the given classifier labels.
    pub fn new<S: AsRef<str>>(labels: &[S]) -> Agreement {
        let n = labels.len();
        Agreement {
            labels: labels.iter().map(|s| s.as_ref().to_string()).collect(),
            agree: vec![0; n * n],
            total: 0,
        }
    }

    /// Classifier labels, in matrix order.
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Number of recorded verdict vectors.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Record one verdict vector (one verdict per classifier, in label
    /// order). Panics if the length does not match the label count.
    pub fn record(&mut self, verdicts: &[bool]) {
        let n = self.labels.len();
        assert_eq!(verdicts.len(), n, "verdict vector must match label count");
        for i in 0..n {
            for j in 0..n {
                if verdicts[i] == verdicts[j] {
                    self.agree[i * n + j] += 1;
                }
            }
        }
        self.total += 1;
    }

    /// How many items classifiers `i` and `j` agreed on.
    pub fn count(&self, i: usize, j: usize) -> u32 {
        self.agree[i * self.labels.len() + j]
    }

    /// Agreement rate between classifiers `i` and `j` in [0, 1]
    /// (0 when nothing was recorded).
    pub fn rate(&self, i: usize, j: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            f64::from(self.count(i, j)) / f64::from(self.total)
        }
    }

    /// Render as a markdown table of `agree/total (rate)` cells.
    pub fn render(&self) -> String {
        let n = self.labels.len();
        let mut out = String::new();
        out.push_str("| agreement |");
        for l in &self.labels {
            out.push_str(&format!(" {l} |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in 0..n {
            out.push_str("---|");
        }
        out.push('\n');
        for i in 0..n {
            out.push_str(&format!("| {} |", self.labels[i]));
            for j in 0..n {
                out.push_str(&format!(" {}/{} ({:.3}) |", self.count(i, j), self.total, self.rate(i, j)));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Agreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl fmt::Display for Confusion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TP={} FP={} TN={} FN={} R={:.3} P={:.3} F1={:.3}",
            self.tp,
            self.fp,
            self.tn,
            self.fn_,
            self.recall(),
            self.precision(),
            self.f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_inspector_row() {
        // Table 3, Ins: TP 88, FP 44, TN 53, FN 11 → R .889 P .667 F1 .762
        let c = Confusion { tp: 88, fp: 44, tn: 53, fn_: 11 };
        assert!((c.recall() - 0.889).abs() < 0.001);
        assert!((c.precision() - 0.667).abs() < 0.001);
        assert!((c.f1() - 0.762).abs() < 0.001);
    }

    #[test]
    fn degenerate_cases() {
        let c = Confusion::default();
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    fn record_and_merge() {
        let mut a = Confusion::default();
        a.record(true, true);
        a.record(false, true);
        let mut b = Confusion::default();
        b.record(true, false);
        b.record(false, false);
        a.merge(&b);
        assert_eq!(a, Confusion { tp: 1, fp: 1, tn: 1, fn_: 1 });
        assert_eq!(a.accuracy(), 0.5);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let c = Confusion { tp: 50, fp: 50, tn: 0, fn_: 50 };
        // P = 0.5, R = 0.5 → F1 = 0.5.
        assert!((c.f1() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn agreement_counts_pairwise() {
        let mut a = Agreement::new(&["expected", "static", "dynamic"]);
        a.record(&[true, true, false]);
        a.record(&[false, false, false]);
        a.record(&[true, false, true]);
        assert_eq!(a.total(), 3);
        // Diagonal is always total.
        for i in 0..3 {
            assert_eq!(a.count(i, i), 3);
        }
        assert_eq!(a.count(0, 1), 2);
        assert_eq!(a.count(0, 2), 2);
        assert_eq!(a.count(1, 2), 1);
        // Symmetric.
        assert_eq!(a.count(1, 0), a.count(0, 1));
        assert!((a.rate(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        let r = a.render();
        assert!(r.contains("| expected |"), "{r}");
    }

    #[test]
    fn empty_agreement_is_safe() {
        let a = Agreement::new(&["x", "y"]);
        assert_eq!(a.total(), 0);
        assert_eq!(a.rate(0, 1), 0.0);
        assert!(a.render().contains("0/0"));
    }
}
