//! `eval` — metrics, output parsing, and the experiment runners that
//! regenerate every table in the paper's evaluation (§4).
//!
//! * [`metrics`] — confusion matrices and recall/precision/F1 (§3.6),
//! * [`parse`] — layered LLM-output parsing with regex-style fallbacks
//!   (§4.5),
//! * [`par`] — scoped-thread parallel sweeps,
//! * [`detection`] / [`varid`] — the S1 and S2/S3 experiment loops,
//! * [`tables`] — one runner per paper table (2, 3, 4, 5, 6).

#![warn(missing_docs)]

pub mod detection;
pub mod metrics;
pub mod par;
pub mod parse;
pub mod stats;
pub mod tables;
pub mod varid;

pub use detection::{run_baseline, run_detection, surrogates, Exchange};
pub use metrics::{Agreement, Confusion};
pub use par::{default_workers, par_map};
pub use parse::{parse_pairs, parse_verdict, ParsedPair, Verdict};
pub use stats::{compare_classifiers, mcnemar_exact, PairedOutcomes};
pub use tables::{
    corpus_surrogates, corpus_views, cv_tables_with_workers, format_cv_table,
    format_detection_table, table2, table3, table4, table4_serial_reference, table5, table6,
    table6_serial_reference, CvRow, DetectionRow,
};
pub use varid::{match_level, pair_matches, run_varid, run_varid_levels, MatchLevel, VarIdExchange};
