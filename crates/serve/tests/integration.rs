//! End-to-end test over real sockets: a server on an ephemeral port,
//! concurrent keep-alive clients, and three guarantees — every response
//! is byte-identical to direct `analyze::response_body` invocation,
//! identical kernels collapse to one cache entry, and graceful drain
//! leaves no queued jobs behind.

use serve::http::client::Client;
use serve::{server, ServeConfig};
use std::net::SocketAddr;
use std::time::Duration;

fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        batch_workers: 2,
        batch_max: 8,
        queue_capacity: 64,
        cache_capacity: 128,
        cache_shards: 4,
        deadline_ms: 10_000,
        poll_ms: 25,
        ..ServeConfig::default()
    }
}

fn post_analyze(addr: SocketAddr, code: &str) -> (u16, Vec<u8>) {
    let body = serde_json::to_string(&serde_json::json!({ "code": code })).unwrap();
    let mut client = Client::connect(addr, Duration::from_secs(30)).unwrap();
    client.request("POST", "/v1/analyze", &[], body.as_bytes()).unwrap()
}

fn bool_field(v: &serde_json::Value, path: &[&str]) -> Option<bool> {
    let mut cur = v;
    for key in path {
        cur = cur.get(key)?;
    }
    match cur {
        serde_json::Value::Bool(b) => Some(*b),
        _ => None,
    }
}

#[test]
fn concurrent_clients_get_byte_identical_responses() {
    let handle = server::start(test_config()).unwrap();
    let addr = handle.addr();

    // A small mixed slice of the corpus: racy and clean kernels.
    let corpus = drb_gen::corpus();
    let kernels: Vec<(String, String)> = corpus
        .iter()
        .take(6)
        .map(|k| (k.trimmed_code.clone(), serve::analyze::response_body(&k.trimmed_code)))
        .collect();

    // 8 concurrent clients × 2 passes over the slice, keep-alive.
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let kernels = kernels.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr, Duration::from_secs(30)).unwrap();
                for pass in 0..2 {
                    for i in 0..kernels.len() {
                        // Stagger the order per thread so cache fills race.
                        let (code, expected) = &kernels[(i + t + pass) % kernels.len()];
                        let body =
                            serde_json::to_string(&serde_json::json!({ "code": code })).unwrap();
                        let (status, got) =
                            client.request("POST", "/v1/analyze", &[], body.as_bytes()).unwrap();
                        assert_eq!(status, 200);
                        assert_eq!(
                            std::str::from_utf8(&got).unwrap(),
                            expected.as_str(),
                            "served bytes diverge from direct invocation"
                        );
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    // 8 clients × 2 passes × 6 kernels hit the same 6 cache keys.
    assert_eq!(handle.cache().len(), kernels.len(), "identical kernels must share one entry");
    let stats = handle.cache().stats();
    assert_eq!(
        stats.hits + stats.misses,
        (8 * 2 * kernels.len()) as u64,
        "every request consults the cache"
    );
    // At most one miss per kernel per in-flight duplicate burst; the
    // steady state is overwhelmingly hits.
    assert!(stats.hits >= (8 * kernels.len()) as u64, "warm passes must hit: {stats:?}");

    let report = handle.shutdown();
    assert_eq!(report.jobs_leftover, 0, "drain must run the queue dry");
}

#[test]
fn verdicts_match_direct_detector_invocation() {
    let handle = server::start(test_config()).unwrap();
    let addr = handle.addr();

    let corpus = drb_gen::corpus();
    let racy = corpus.iter().find(|k| k.race).unwrap();
    let clean = corpus.iter().find(|k| !k.race).unwrap();

    for k in [racy, clean] {
        let (status, body) = post_analyze(addr, &k.trimmed_code);
        assert_eq!(status, 200);
        let resp: serde_json::Value =
            serde_json::from_str(std::str::from_utf8(&body).unwrap()).unwrap();
        let direct = xcheck::verdicts_of_code(&k.trimmed_code).expect("corpus kernels parse");
        assert_eq!(
            bool_field(&resp, &["verdicts", "static"]),
            Some(direct.stat),
            "static verdict drift on {}",
            k.name
        );
        assert_eq!(
            bool_field(&resp, &["verdicts", "dynamic"]),
            direct.dynv,
            "dynamic drift on {}",
            k.name
        );
        assert_eq!(
            bool_field(&resp, &["verdicts", "llm"]),
            Some(direct.llm),
            "llm drift on {}",
            k.name
        );
    }
    handle.shutdown();
}

#[test]
fn health_metrics_and_errors_over_real_sockets() {
    let handle = server::start(test_config()).unwrap();
    let addr = handle.addr();

    let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
    let (status, body) = client.request("GET", "/healthz", &[], b"").unwrap();
    assert_eq!(status, 200);
    assert!(std::str::from_utf8(&body).unwrap().contains("\"ok\":true"));

    // Unknown route and wrong method on a live route.
    let (status, _) = client.request("GET", "/nope", &[], b"").unwrap();
    assert_eq!(status, 404);
    let (status, _) = client.request("GET", "/v1/analyze", &[], b"").unwrap();
    assert_eq!(status, 405);

    // Bad JSON is a 400, not a worker crash.
    let (status, _) = client.request("POST", "/v1/analyze", &[], b"{nope").unwrap();
    assert_eq!(status, 400);

    // All of the above flowed on ONE keep-alive connection; metrics saw them.
    let (status, metrics) = client.request("GET", "/metrics", &[], b"").unwrap();
    assert_eq!(status, 200);
    let text = std::str::from_utf8(&metrics).unwrap();
    assert!(text.contains("racellm_http_requests_total{route=\"healthz\",status=\"200\"} 1"));
    assert!(text.contains("racellm_http_requests_total{route=\"other\",status=\"404\"} 1"));
    assert!(text.contains("racellm_http_requests_total{route=\"analyze\",status=\"405\"} 1"));
    assert!(text.contains("racellm_http_requests_total{route=\"analyze\",status=\"400\"} 1"));
    assert_eq!(serve::metrics::scrape_value(text, "racellm_connections_active"), Some(1.0));

    handle.shutdown();
}

#[test]
fn per_request_deadline_and_drain_under_load() {
    let handle = server::start(test_config()).unwrap();
    let addr = handle.addr();

    // A kernel not yet cached + zero deadline: the conn thread gives up
    // before any worker can finish.
    let corpus = drb_gen::corpus();
    let code = &corpus[42].trimmed_code;
    let body = serde_json::to_string(&serde_json::json!({ "code": code })).unwrap();
    let mut client = Client::connect(addr, Duration::from_secs(10)).unwrap();
    let (status, _) = client
        .request(
            "POST",
            "/v1/analyze",
            &[("x-racellm-deadline-ms", "0".to_string())],
            body.as_bytes(),
        )
        .unwrap();
    assert_eq!(status, 504);

    // The same kernel without the header succeeds afterwards — the
    // expired job didn't wedge the queue or poison the cache.
    let (status, got) = post_analyze(addr, code);
    assert_eq!(status, 200);
    assert_eq!(std::str::from_utf8(&got).unwrap(), serve::analyze::response_body(code));

    let report = handle.shutdown();
    assert_eq!(report.jobs_leftover, 0);
}

#[test]
fn fix_route_serves_certified_patches_with_byte_identical_hits() {
    let handle = server::start(test_config()).unwrap();
    let addr = handle.addr();

    let racy = "int sum;\nint main() {\n  #pragma omp parallel for\n  for (int i = 0; i < 64; i++) sum += i;\n  return sum;\n}\n";
    let expected = serve::fixer::fix_body(racy);
    let body = serde_json::to_string(&serde_json::json!({ "code": racy })).unwrap();

    let mut client = Client::connect(addr, Duration::from_secs(30)).unwrap();
    let (status, cold) = client.request("POST", "/v1/fix", &[], body.as_bytes()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(std::str::from_utf8(&cold).unwrap(), expected, "served fix diverges from direct invocation");
    let (status, warm) = client.request("POST", "/v1/fix", &[], body.as_bytes()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(warm, cold, "cache hit must be byte-identical");

    // The same kernel analyzed and fixed must occupy distinct cache
    // entries (namespaced keys), and the patch must replay green.
    let (status, _) = client.request("POST", "/v1/analyze", &[], body.as_bytes()).unwrap();
    assert_eq!(status, 200);
    assert_eq!(handle.cache().len(), 2, "analyze and fix responses are separate entries");

    let resp: serde_json::Value =
        serde_json::from_str(std::str::from_utf8(&cold).unwrap()).unwrap();
    let patched = resp
        .get("fix")
        .and_then(|f| f.get("patched_code"))
        .and_then(serde_json::Value::as_str)
        .expect("patched code on the wire");
    let unit = minic::parse(patched).expect("patched kernel parses");
    assert!(racecheck::check(&unit).races.is_empty(), "wire patch must replay racecheck-clean");

    // Counters: two fix requests, one fresh certification (the warm
    // repeat was a cache hit), wrong-method guard on the new route.
    let (status, _) = client.request("GET", "/v1/fix", &[], b"").unwrap();
    assert_eq!(status, 405);
    let m = handle.metrics();
    assert_eq!(m.fix_requests_total.get(), 2);
    assert_eq!(m.fix_certified_total.get(), 1);
    let text = handle.render_metrics();
    assert!(text.contains("racellm_http_requests_total{route=\"fix\",status=\"200\"} 2"));
    assert!(text.contains("racellm_http_requests_total{route=\"fix\",status=\"405\"} 1"));
    assert!(text.contains("racellm_fix_requests_total 2"));
    assert!(text.contains("racellm_fix_certified_total 1"));

    let report = handle.shutdown();
    assert_eq!(report.jobs_leftover, 0);
}
