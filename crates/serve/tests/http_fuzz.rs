//! Fuzzing the HTTP request parser: whatever a client throws at it —
//! random byte soup, malformed request lines, hostile `Content-Length`
//! headers, truncated bodies, header floods — the parser must return a
//! typed error (mapping to a 4xx) or a request, and never panic, hang,
//! or read past its limits.

use proptest::prelude::*;
use serve::http::{read_request, Conn, Limits, RecvError, Request};
use std::io::Cursor;

fn parse(raw: &[u8]) -> Result<Request, RecvError> {
    parse_with(raw, &Limits::default())
}

fn parse_with(raw: &[u8], limits: &Limits) -> Result<Request, RecvError> {
    read_request(&mut Conn::new(Cursor::new(raw.to_vec())), limits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: must terminate with *some* result, no panic.
    #[test]
    fn random_bytes_never_panic(raw in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = parse(&raw);
    }

    /// Arbitrary printable junk shaped like header lines.
    #[test]
    fn random_lines_never_panic(lines in proptest::collection::vec("[ -~]{0,80}", 0..20)) {
        let mut raw = lines.join("\r\n");
        raw.push_str("\r\n\r\n");
        let _ = parse(raw.as_bytes());
    }

    /// A syntactically valid request round-trips its body whatever the
    /// payload bytes are.
    #[test]
    fn valid_request_roundtrips_any_body(body in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut raw = format!(
            "POST /v1/analyze HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        )
        .into_bytes();
        raw.extend_from_slice(&body);
        let req = parse(&raw).expect("valid request parses");
        prop_assert_eq!(req.method.as_str(), "POST");
        prop_assert_eq!(req.body, body);
    }

    /// Claimed Content-Length beyond the actual bytes: typed truncation
    /// error, never a hang (EOF stands in for the socket read timeout).
    #[test]
    fn truncated_bodies_error(
        claimed in 1usize..10_000,
        sent in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(claimed > sent.len());
        let mut raw = format!("POST / HTTP/1.1\r\ncontent-length: {claimed}\r\n\r\n").into_bytes();
        raw.extend_from_slice(&sent);
        prop_assert!(matches!(parse(&raw), Err(RecvError::Truncated)));
    }

    /// Duplicate Content-Length headers are always rejected, even when
    /// the values agree (request-smuggling hygiene).
    #[test]
    fn duplicate_content_length_rejected(a in 0usize..100, b in 0usize..100) {
        let raw = format!(
            "POST / HTTP/1.1\r\ncontent-length: {a}\r\ncontent-length: {b}\r\n\r\n{}",
            "x".repeat(a.max(b))
        );
        prop_assert!(matches!(
            parse(raw.as_bytes()),
            Err(RecvError::Malformed("duplicate content-length"))
        ));
    }

    /// Non-numeric, negative, or overflowing Content-Length values are
    /// 400s; merely huge ones are 413s.
    #[test]
    fn hostile_content_length_values(v in "[ -~]{1,24}") {
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {v}\r\n\r\n");
        match parse(raw.as_bytes()) {
            Ok(req) => {
                // Only possible when the junk parsed as a small length
                // and enough bytes followed (they never do here)…
                prop_assert_eq!(req.body.len(), 0);
                prop_assert_eq!(v.trim().parse::<usize>().unwrap_or(1), 0);
            }
            Err(RecvError::Malformed(_) | RecvError::BodyTooLarge | RecvError::Truncated) => {}
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }

    /// Header floods hit the header cap, not memory.
    #[test]
    fn header_floods_hit_the_cap(n in 65usize..512) {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..n {
            raw.push_str(&format!("x-flood-{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        prop_assert!(matches!(parse(raw.as_bytes()), Err(RecvError::HeaderFlood)));
    }

    /// Oversized request lines are bounded by `max_line`.
    #[test]
    fn oversized_request_lines_bounded(n in 1usize..64) {
        let limits = Limits { max_line: 128, ..Limits::default() };
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(128 + n));
        prop_assert!(matches!(parse_with(raw.as_bytes(), &limits), Err(RecvError::UriTooLong)));
    }

    /// Malformed request lines (wrong token count, bad method, bad
    /// version) are 400s; three well-formed tokens parse.
    #[test]
    fn request_line_shapes(tokens in proptest::collection::vec("[!-~]{1,12}", 1..6)) {
        let line = tokens.join(" ");
        let raw = format!("{line}\r\n\r\n");
        match parse(raw.as_bytes()) {
            Ok(req) => {
                prop_assert_eq!(tokens.len(), 3);
                prop_assert_eq!(req.method.as_str(), tokens[0].as_str());
                prop_assert!(tokens[2] == "HTTP/1.1" || tokens[2] == "HTTP/1.0");
            }
            Err(RecvError::Malformed(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }
}

#[test]
fn content_length_at_limit_is_accepted_and_beyond_rejected() {
    let limits = Limits { max_body: 64, ..Limits::default() };
    let raw = format!("POST / HTTP/1.1\r\ncontent-length: 64\r\n\r\n{}", "x".repeat(64));
    assert!(parse_with(raw.as_bytes(), &limits).is_ok());
    let raw = format!("POST / HTTP/1.1\r\ncontent-length: 65\r\n\r\n{}", "x".repeat(65));
    assert!(matches!(parse_with(raw.as_bytes(), &limits), Err(RecvError::BodyTooLarge)));
}
