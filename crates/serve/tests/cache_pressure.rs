//! Cache correctness under capacity pressure: hit/miss/eviction
//! counters move exactly as the access pattern dictates, and no amount
//! of churn — including a live server with a cache smaller than its
//! working set — ever yields a stale or cross-kernel response.

use serve::cache::ShardedLru;
use serve::http::client::Client;
use serve::{server, ServeConfig};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn counters_track_the_access_pattern() {
    // Single shard: capacity accounting is exact (with N shards the
    // per-shard capacity is capacity/N and eviction counts depend on
    // how keys hash across shards).
    let cache = ShardedLru::new(8, 1);
    for i in 0..8 {
        let key = format!("kernel-{i}");
        assert!(cache.get(&key).is_none());
        cache.insert(&key, Arc::from(format!("body-{i}").as_str()));
    }
    let s = cache.stats();
    assert_eq!((s.hits, s.misses, s.insertions, s.evictions), (0, 8, 8, 0));

    for i in 0..8 {
        let got = cache.get(&format!("kernel-{i}")).expect("resident");
        assert_eq!(&*got, format!("body-{i}").as_str());
    }
    let s = cache.stats();
    assert_eq!((s.hits, s.misses), (8, 8));

    // Overflow: 8 more keys evict the 8 old ones in LRU order.
    for i in 8..16 {
        let key = format!("kernel-{i}");
        cache.insert(&key, Arc::from(format!("body-{i}").as_str()));
    }
    let s = cache.stats();
    assert_eq!(s.insertions, 16);
    assert_eq!(s.evictions, 8, "capacity 8 + 16 inserts = 8 evictions");
    assert_eq!(cache.len(), 8);
}

#[test]
fn eviction_churn_never_crosses_keys() {
    // Capacity far below the key space, hammered from 8 threads: every
    // successful get must return that exact key's value.
    let cache = Arc::new(ShardedLru::new(16, 4));
    let threads: Vec<_> = (0..8)
        .map(|t| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                for round in 0..400 {
                    let i = (t * 131 + round * 17) % 96;
                    let key = format!("k{i}");
                    match cache.get(&key) {
                        Some(v) => assert_eq!(&*v, format!("v{i}").as_str(), "cross-key value"),
                        None => {
                            cache.insert(&key, Arc::from(format!("v{i}").as_str()))
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let s = cache.stats();
    assert!(s.evictions > 0, "pressure must actually evict: {s:?}");
    assert!(cache.len() <= 16);
}

#[test]
fn server_under_cache_pressure_stays_byte_identical() {
    // Working set (12 kernels) larger than the cache (4 slots): every
    // response must still match direct invocation even though entries
    // are constantly evicted and recomputed.
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_capacity: 4,
        cache_shards: 2,
        batch_workers: 2,
        deadline_ms: 10_000,
        poll_ms: 25,
        ..ServeConfig::default()
    };
    let handle = server::start(cfg).unwrap();
    let addr = handle.addr();

    let corpus = drb_gen::corpus();
    let kernels: Vec<(String, String)> = corpus
        .iter()
        .take(12)
        .map(|k| (k.trimmed_code.clone(), serve::analyze::response_body(&k.trimmed_code)))
        .collect();

    let mut client = Client::connect(addr, Duration::from_secs(30)).unwrap();
    for pass in 0..3 {
        for (i, (code, expected)) in kernels.iter().enumerate() {
            let body = serde_json::to_string(&serde_json::json!({ "code": code })).unwrap();
            let (status, got) =
                client.request("POST", "/v1/analyze", &[], body.as_bytes()).unwrap();
            assert_eq!(status, 200, "pass {pass} kernel {i}");
            assert_eq!(
                std::str::from_utf8(&got).unwrap(),
                expected.as_str(),
                "stale/cross-kernel bytes under eviction (pass {pass}, kernel {i})"
            );
        }
    }

    let stats = handle.cache().stats();
    assert!(stats.evictions > 0, "cache pressure must evict: {stats:?}");
    assert!(handle.cache().len() <= 4);
    let report = handle.shutdown();
    assert_eq!(report.jobs_leftover, 0);
}
