//! Regression coverage for the interpreter-fallback path: kernels the
//! bytecode lowerer rejects (`sections` here) must still get a dynamic
//! verdict — via the AST interpreter — and the service must account for
//! the slow path in `racellm_oracle_fallbacks_total` so an operator can
//! see how much traffic misses the fast path.

use serve::http::client::Client;
use serve::{server, ServeConfig};
use std::time::Duration;

/// Racy `parallel sections` kernel: parses and runs under the AST
/// interpreter, but the lowerer intentionally rejects `sections`.
const SECTIONS_RACY: &str = "int x;\nint y;\n\nint main() {\n  x = 0;\n  y = 0;\n  #pragma omp parallel sections\n  {\n    #pragma omp section\n    {\n      x = x + 1;\n    }\n    #pragma omp section\n    {\n      x = x + 2;\n    }\n  }\n  return 0;\n}\n";

/// Plain parallel-for (clean): lowers and runs on the bytecode path.
const LOWERABLE_CLEAN: &str = "int a[64];\nint main() {\n  int i;\n  #pragma omp parallel for\n  for (i = 0; i < 64; i++) {\n    a[i] = i * 2;\n  }\n  return 0;\n}\n";

#[test]
fn rejected_kernel_still_gets_a_dynamic_verdict() {
    let unit = minic::parse(SECTIONS_RACY).unwrap();
    assert!(hbsan::lower(&unit).is_err(), "sections must be rejected, not unwrapped");

    // The traced analysis reports the fallback and still produces a
    // dynamic verdict (the interpreter ran the kernel).
    let (resp, fell_back) = serve::analyze::analyze_code_traced(SECTIONS_RACY);
    assert!(fell_back, "rejected lowering must be reported as a fallback");
    assert_eq!(resp.verdicts.dynamic, Some(true), "interpreter fallback must yield a verdict");

    // And the fallback flag is a pure side channel: the response is
    // byte-identical to the untraced path.
    assert_eq!(resp, serve::analyze::analyze_code(SECTIONS_RACY));

    let (_, fast) = serve::analyze::analyze_code_traced(LOWERABLE_CLEAN);
    assert!(!fast, "a lowerable kernel must take the bytecode path");
}

#[test]
fn fallback_counter_reaches_the_metrics_endpoint() {
    let handle = server::start(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        batch_linger_micros: 0,
        poll_ms: 20,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect(handle.addr(), Duration::from_secs(30)).unwrap();

    let post = |client: &mut Client, code: &str| {
        let body = serde_json::to_string(&serde_json::json!({ "code": code })).unwrap();
        let (status, _) = client.request("POST", "/v1/analyze", &[], body.as_bytes()).unwrap();
        assert_eq!(status, 200);
    };
    let fallbacks = |client: &mut Client| {
        let (status, body) = client.request("GET", "/metrics", &[], b"").unwrap();
        assert_eq!(status, 200);
        serve::metrics::scrape_value(
            std::str::from_utf8(&body).unwrap(),
            "racellm_oracle_fallbacks_total",
        )
        .expect("fallback counter is rendered")
    };

    assert_eq!(fallbacks(&mut client), 0.0);
    post(&mut client, LOWERABLE_CLEAN);
    assert_eq!(fallbacks(&mut client), 0.0, "bytecode path must not count as fallback");
    post(&mut client, SECTIONS_RACY);
    assert_eq!(fallbacks(&mut client), 1.0, "rejected kernel must increment the counter");
    // A cache hit re-serves the body without re-running the oracle.
    post(&mut client, SECTIONS_RACY);
    assert_eq!(fallbacks(&mut client), 1.0);

    handle.shutdown();
}
