//! Bounded job queue with admission control and batch pops.
//!
//! The queue is the service's backpressure point: connection handlers
//! `try_push` (never block — a full queue is an immediate HTTP 429 with
//! `Retry-After`), workers pop *batches* (one blocking wait for the
//! first job, then a greedy drain plus an optional linger window to
//! coalesce stragglers). `close` flips drain mode: pushes are refused
//! but pops keep returning queued jobs until the queue is empty, so a
//! graceful shutdown finishes everything that was admitted.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// Queue at capacity (HTTP 429); the job is handed back.
    Full(T),
    /// Queue closed for drain (HTTP 503); the job is handed back.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded MPMC queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// Queue admitting at most `cap` items.
    pub fn new(cap: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State { items: VecDeque::with_capacity(cap.min(1024)), closed: false }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Non-blocking admission; returns the new depth on success.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Pop up to `max` items: block (in `poll`-sized waits, so closing
    /// wakes us promptly) until at least one item is available, drain
    /// greedily, then optionally linger once for stragglers. Returns
    /// `None` only when the queue is closed *and* empty.
    pub fn pop_batch(&self, max: usize, linger: Duration, poll: Duration) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if !s.items.is_empty() {
                break;
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait_timeout(s, poll).expect("queue poisoned").0;
        }
        let mut out = Vec::with_capacity(max.min(s.items.len()));
        while out.len() < max {
            match s.items.pop_front() {
                Some(x) => out.push(x),
                None => break,
            }
        }
        if out.len() < max && !linger.is_zero() && !s.closed {
            s = self.not_empty.wait_timeout(s, linger).expect("queue poisoned").0;
            while out.len() < max {
                match s.items.pop_front() {
                    Some(x) => out.push(x),
                    None => break,
                }
            }
        }
        Some(out)
    }

    /// Refuse new pushes; wake all waiting workers.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    const POLL: Duration = Duration::from_millis(20);

    #[test]
    fn admission_control_rejects_when_full() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1).unwrap(), 1);
        assert_eq!(q.try_push(2).unwrap(), 2);
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        q.close();
        assert!(matches!(q.try_push(4), Err(PushError::Closed(4))));
    }

    #[test]
    fn batch_pop_coalesces_backlog() {
        let q = Bounded::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let batch = q.pop_batch(4, Duration::ZERO, POLL).unwrap();
        assert_eq!(batch, vec![0, 1, 2, 3]);
        let batch = q.pop_batch(32, Duration::ZERO, POLL).unwrap();
        assert_eq!(batch.len(), 6);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Bounded::new(8);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.pop_batch(1, Duration::ZERO, POLL).unwrap(), vec![1]);
        assert_eq!(q.pop_batch(8, Duration::ZERO, POLL).unwrap(), vec![2]);
        assert!(q.pop_batch(8, Duration::ZERO, POLL).is_none());
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = Arc::new(Bounded::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop_batch(4, Duration::ZERO, POLL));
        std::thread::sleep(Duration::from_millis(5));
        q.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn linger_picks_up_stragglers() {
        let q = Arc::new(Bounded::new(8));
        q.try_push(1u32).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.try_push(2).unwrap();
        });
        let t0 = Instant::now();
        let batch = q.pop_batch(4, Duration::from_millis(200), POLL).unwrap();
        pusher.join().unwrap();
        assert!(batch == vec![1, 2] || batch == vec![1], "{batch:?}");
        assert!(t0.elapsed() < Duration::from_secs(1));
    }
}
