//! Acceptor, connection handlers, micro-batching worker pool, and
//! graceful drain — the service's process shape.
//!
//! Threading model (DESIGN.md §10): one non-blocking acceptor polls the
//! listener and spawns a handler thread per connection (capped —
//! excess connections get an immediate 503). Handlers parse requests,
//! serve cache hits inline, and enqueue misses as [`Job`]s on the
//! bounded queue, then wait on a rendezvous channel with the request's
//! deadline (504 on expiry, 429 + `Retry-After` when the queue refuses
//! admission). A small pool of batch workers pops coalesced batches and
//! fans each over [`par::par_map`], inserting every result into the
//! cache before replying.
//!
//! Shutdown is a drain, not an abort: the acceptor stops, handlers
//! finish their in-flight request and close on the next poll tick,
//! the queue closes and the workers run it dry, and only then does
//! [`ServerHandle::shutdown`] return.

use crate::cache::ShardedLru;
use crate::metrics::{route_index, Metrics, OTHER_ROUTE};
use crate::queue::{Bounded, PushError};
use crate::{analyze, fixer, http, ServeConfig};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a queued job computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobKind {
    Analyze,
    Fix,
}

impl JobKind {
    /// Namespaced cache key: `/v1/analyze` and `/v1/fix` responses for
    /// the same kernel are distinct entries in the shared LRU (`\0`
    /// cannot appear in a route prefix, so namespaces cannot collide).
    fn cache_key(self, code: &str) -> String {
        match self {
            JobKind::Analyze => format!("analyze\0{code}"),
            JobKind::Fix => format!("fix\0{code}"),
        }
    }
}

/// One queued request (analysis or repair).
struct Job {
    kind: JobKind,
    code: String,
    deadline: Instant,
    reply: SyncSender<Reply>,
}

enum Reply {
    Body(Arc<str>),
    Expired,
}

/// Counts live connection handlers so drain can wait for them.
#[derive(Default)]
struct WaitGroup {
    n: Mutex<usize>,
    cv: Condvar,
}

impl WaitGroup {
    fn add(&self) {
        *self.n.lock().expect("waitgroup poisoned") += 1;
    }

    fn done(&self) {
        let mut n = self.n.lock().expect("waitgroup poisoned");
        *n -= 1;
        if *n == 0 {
            self.cv.notify_all();
        }
    }

    fn count(&self) -> usize {
        *self.n.lock().expect("waitgroup poisoned")
    }

    fn wait_zero(&self) {
        let mut n = self.n.lock().expect("waitgroup poisoned");
        while *n > 0 {
            n = self.cv.wait_timeout(n, Duration::from_millis(50)).expect("waitgroup poisoned").0;
        }
    }
}

struct Shared {
    cfg: ServeConfig,
    metrics: Metrics,
    cache: ShardedLru,
    queue: Bounded<Job>,
    draining: AtomicBool,
    conns: WaitGroup,
}

/// What the drain saw on the way out.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Jobs the worker pool analyzed over the server's lifetime.
    pub jobs_processed: usize,
    /// Jobs still queued after the workers exited (always 0 on a clean
    /// drain).
    pub jobs_leftover: usize,
}

/// A running server. Dropping the handle does *not* stop the server;
/// call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<usize>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live metric tree.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The response cache.
    pub fn cache(&self) -> &ShardedLru {
        &self.shared.cache
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// The Prometheus exposition text, exactly as `GET /metrics` serves it.
    pub fn render_metrics(&self) -> String {
        self.shared.metrics.render(&self.shared.cache.stats())
    }

    /// Graceful drain: stop accepting, let in-flight requests finish,
    /// run the queue dry, join every thread.
    pub fn shutdown(self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        let _ = self.acceptor.join();
        self.shared.conns.wait_zero();
        self.shared.queue.close();
        let jobs_processed = self.workers.into_iter().map(|w| w.join().unwrap_or(0)).sum();
        DrainReport { jobs_processed, jobs_leftover: self.shared.queue.len() }
    }
}

/// Bind and start the full service.
pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let shared = Arc::new(Shared {
        metrics: Metrics::new(),
        cache: ShardedLru::new(cfg.cache_capacity, cfg.cache_shards),
        queue: Bounded::new(cfg.queue_capacity),
        draining: AtomicBool::new(false),
        conns: WaitGroup::default(),
        cfg,
    });

    let workers = (0..shared.cfg.batch_workers.max(1))
        .map(|_| {
            let s = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&s))
        })
        .collect();

    let acceptor = {
        let s = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&listener, &s))
    };

    Ok(ServerHandle { addr, shared, acceptor, workers })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.metrics.connections_total.inc();
                if shared.conns.count() >= shared.cfg.max_connections {
                    shared.metrics.connections_rejected_total.inc();
                    shared.metrics.record(OTHER_ROUTE, 503);
                    let mut stream = stream;
                    let _ = http::write_response(
                        &mut stream,
                        503,
                        "application/json",
                        &[("retry-after", "1".to_string())],
                        http::error_body("connection limit reached").as_bytes(),
                        false,
                    );
                    continue;
                }
                shared.conns.add();
                shared.metrics.connections_active.add(1);
                let s = Arc::clone(shared);
                std::thread::spawn(move || {
                    conn_loop(&s, stream);
                    s.metrics.connections_active.add(-1);
                    s.conns.done();
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn conn_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(shared.cfg.poll_ms.max(1))));
    let Ok(mut writer) = stream.try_clone() else { return };
    let mut conn = http::Conn::new(stream);
    let limits =
        http::Limits { max_body: shared.cfg.max_body_bytes, ..http::Limits::default() };

    loop {
        match http::read_request(&mut conn, &limits) {
            Ok(req) => {
                let keep = handle_request(shared, &mut writer, &req);
                if !keep || shared.draining.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(http::RecvError::Idle) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(http::RecvError::Closed) => break,
            Err(e) => {
                shared.metrics.http_parse_errors_total.inc();
                if let Some((status, msg)) = e.status() {
                    shared.metrics.record(OTHER_ROUTE, status);
                    let _ = http::write_response(
                        &mut writer,
                        status,
                        "application/json",
                        &[],
                        http::error_body(msg).as_bytes(),
                        false,
                    );
                }
                break;
            }
        }
    }
    let _ = writer.flush();
}

/// Handle one request; returns whether to keep the connection open.
fn handle_request(shared: &Arc<Shared>, w: &mut TcpStream, req: &http::Request) -> bool {
    let draining = shared.draining.load(Ordering::SeqCst);
    let keep = req.keep_alive && !draining;
    let route = route_index(&req.target);
    let mut respond = |status: u16, ct: &str, extra: &[(&str, String)], body: &[u8]| -> bool {
        shared.metrics.record(route, status);
        http::write_response(w, status, ct, extra, body, keep).is_ok() && keep
    };

    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => {
            let body = serde_json::to_string(&serde_json::json!({
                "ok": true,
                "draining": draining,
            }))
            .expect("healthz body serializes");
            respond(200, "application/json", &[], body.as_bytes())
        }
        ("GET", "/metrics") => {
            let text = shared.metrics.render(&shared.cache.stats());
            respond(200, "text/plain; version=0.0.4", &[], text.as_bytes())
        }
        ("POST", "/v1/analyze") => handle_submit(shared, w, req, keep, JobKind::Analyze),
        ("POST", "/v1/fix") => handle_submit(shared, w, req, keep, JobKind::Fix),
        (_, "/healthz") | (_, "/metrics") | (_, "/v1/analyze") | (_, "/v1/fix") => respond(
            405,
            "application/json",
            &[(
                "allow",
                if req.target.starts_with("/v1/") { "POST" } else { "GET" }.to_string(),
            )],
            http::error_body("method not allowed").as_bytes(),
        ),
        _ => respond(404, "application/json", &[], http::error_body("no such route").as_bytes()),
    }
}

fn handle_submit(
    shared: &Arc<Shared>,
    w: &mut TcpStream,
    req: &http::Request,
    keep: bool,
    kind: JobKind,
) -> bool {
    let t0 = Instant::now();
    let route = route_index(&req.target);
    if kind == JobKind::Fix {
        shared.metrics.fix_requests_total.inc();
    }
    let mut respond = |status: u16, extra: &[(&str, String)], body: &[u8]| -> bool {
        shared.metrics.record(route, status);
        shared.metrics.request_seconds.observe(t0.elapsed().as_secs_f64());
        http::write_response(w, status, "application/json", extra, body, keep).is_ok() && keep
    };

    let wire: analyze::AnalyzeRequest = match std::str::from_utf8(&req.body)
        .ok()
        .and_then(|t| serde_json::from_str(t).ok())
    {
        Some(wire) => wire,
        None => {
            return respond(
                400,
                &[],
                http::error_body("body must be JSON: {\"code\": \"...\"}").as_bytes(),
            )
        }
    };

    // Cache hit: serve inline, no queue round-trip.
    if let Some(body) = shared.cache.get(&kind.cache_key(&wire.code)) {
        return respond(200, &[], body.as_bytes());
    }

    let deadline_ms = req
        .header("x-racellm-deadline-ms")
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(shared.cfg.deadline_ms)
        .min(shared.cfg.deadline_ms);
    let deadline = t0 + Duration::from_millis(deadline_ms);

    let (tx, rx) = mpsc::sync_channel(1);
    match shared.queue.try_push(Job { kind, code: wire.code, deadline, reply: tx }) {
        Err(PushError::Full(_)) => {
            shared.metrics.queue_rejected_total.inc();
            return respond(
                429,
                &[("retry-after", "1".to_string())],
                http::error_body("analysis queue full").as_bytes(),
            );
        }
        Err(PushError::Closed(_)) => {
            return respond(503, &[], http::error_body("server draining").as_bytes());
        }
        Ok(depth) => shared.metrics.queue_depth.set(depth as i64),
    }

    match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
        Ok(Reply::Body(body)) => respond(200, &[], body.as_bytes()),
        Ok(Reply::Expired) | Err(RecvTimeoutError::Timeout) => {
            shared.metrics.deadline_expired_total.inc();
            respond(504, &[], http::error_body("deadline exceeded").as_bytes())
        }
        Err(RecvTimeoutError::Disconnected) => {
            respond(500, &[], http::error_body("worker pool gone").as_bytes())
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) -> usize {
    let cfg = &shared.cfg;
    let linger = Duration::from_micros(cfg.batch_linger_micros);
    let poll = Duration::from_millis(cfg.poll_ms.max(1));
    let mut processed = 0usize;

    while let Some(batch) = shared.queue.pop_batch(cfg.batch_max, linger, poll) {
        shared.metrics.queue_depth.set(shared.queue.len() as i64);
        shared.metrics.batches_total.inc();
        shared.metrics.batch_size.observe(batch.len() as f64);

        let now = Instant::now();
        let (live, expired): (Vec<Job>, Vec<Job>) =
            batch.into_iter().partition(|j| j.deadline > now);
        for job in expired {
            shared.metrics.worker_expired_total.inc();
            let _ = job.reply.try_send(Reply::Expired);
        }
        if live.is_empty() {
            continue;
        }

        let work: Vec<(JobKind, &str)> = live.iter().map(|j| (j.kind, j.code.as_str())).collect();
        let fan = cfg.batch_parallelism.clamp(1, work.len());
        let bodies = par::par_map(&work, fan, |(kind, c)| match kind {
            JobKind::Analyze => {
                let (body, fell_back) = analyze::response_body_traced(c);
                (body, fell_back, false)
            }
            JobKind::Fix => fixer::fix_body_traced(c),
        });

        for (job, (body, fell_back, certified)) in live.iter().zip(bodies) {
            if fell_back {
                shared.metrics.oracle_fallbacks_total.inc();
            }
            if certified {
                shared.metrics.fix_certified_total.inc();
            }
            let body: Arc<str> = Arc::from(body);
            shared.cache.insert(&job.kind.cache_key(&job.code), Arc::clone(&body));
            processed += 1;
            let _ = job.reply.try_send(Reply::Body(body));
        }
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::client::Client;

    fn test_cfg() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            poll_ms: 20,
            batch_linger_micros: 0,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn routes_and_drain() {
        let h = start(test_cfg()).expect("bind");
        let mut c = Client::connect(h.addr(), Duration::from_secs(5)).unwrap();
        let (status, body) = c.request("GET", "/healthz", &[], b"").unwrap();
        assert_eq!(status, 200);
        assert!(String::from_utf8(body).unwrap().contains("\"ok\":true"));

        let (status, _) = c.request("GET", "/nope", &[], b"").unwrap();
        assert_eq!(status, 404);
        let (status, _) = c.request("DELETE", "/v1/analyze", &[], b"").unwrap();
        assert_eq!(status, 405);
        let (status, _) = c.request("POST", "/v1/analyze", &[], b"not json").unwrap();
        assert_eq!(status, 400);

        let body = serde_json::to_string(&crate::analyze::AnalyzeRequest {
            code: "int main() { return 0; }".to_string(),
        })
        .unwrap();
        let (status, got) = c.request("POST", "/v1/analyze", &[], body.as_bytes()).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            String::from_utf8(got).unwrap(),
            crate::analyze::response_body("int main() { return 0; }")
        );

        let report = h.shutdown();
        assert_eq!(report.jobs_leftover, 0);
        assert_eq!(report.jobs_processed, 1);
    }

    #[test]
    fn deadline_zero_expires() {
        let h = start(test_cfg()).expect("bind");
        let mut c = Client::connect(h.addr(), Duration::from_secs(5)).unwrap();
        let body = serde_json::to_string(&crate::analyze::AnalyzeRequest {
            code: "int x; int main() { x = 1; return x; }".to_string(),
        })
        .unwrap();
        let (status, _) = c
            .request(
                "POST",
                "/v1/analyze",
                &[("x-racellm-deadline-ms", "0".to_string())],
                body.as_bytes(),
            )
            .unwrap();
        assert_eq!(status, 504);
        assert_eq!(h.metrics().deadline_expired_total.get(), 1);
        h.shutdown();
    }
}
