//! `racellm-serve` — a batched, cached, backpressured HTTP detection
//! service over the workspace's three race detectors.
//!
//! Every detector in the repo was previously reachable only through
//! one-shot CLI table runs; this crate gives the pipeline the shape of
//! a real inference stack (DESIGN.md §10):
//!
//! ```text
//!          ┌────────────┐   miss   ┌───────────────┐  batch  ┌───────────┐
//! conns ──▶│ HTTP/1.1   │─────────▶│ bounded queue │────────▶│ worker    │
//!          │ keep-alive │◀── hit ──│ (429 + Retry- │◀─reply──│ pool ×W   │
//!          │ handlers   │  ┌─────┐ │  After: full) │         │ par_map   │
//!          └────────────┘  │ LRU │ └───────────────┘         └───────────┘
//!                          └─────┘      sharded cache, byte-identical
//! ```
//!
//! * [`http`] — a hand-rolled, hard-limited HTTP/1.1 parser and writer
//!   over `std::net` (the build has no crates.io access, so no hyper);
//! * [`queue`] — the bounded admission-controlled job queue;
//! * [`cache`] — a sharded, FxHash-keyed LRU of serialized responses;
//! * [`metrics`] — Prometheus-text counters, gauges, and histograms;
//! * [`analyze`] — the deterministic kernel → JSON-verdict engine
//!   (reuses [`llm::AnalyzedKernel`] and xcheck's verdict adapters);
//! * [`fixer`] — the deterministic kernel → certified-patch engine
//!   behind `POST /v1/fix` (the `repair` crate's detect → fix → verify
//!   loop, certificates shipped verbatim);
//! * [`server`] — acceptor, connection handlers, micro-batching worker
//!   pool, graceful drain;
//! * [`loadgen`] — a closed-loop socket-level load generator emitting
//!   `BENCH_serve.json`;
//! * [`smoke`] — the tier-1 `racellm-cli serve --smoke` gate.

#![warn(missing_docs)]

pub mod analyze;
pub mod cache;
pub mod fixer;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod queue;
pub mod server;
pub mod smoke;

/// Server tuning knobs. `Default` is sized for a local deployment; the
/// smoke gate and tests shrink most of these.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Number of micro-batching worker threads draining the queue.
    pub batch_workers: usize,
    /// Fan-out width *inside* one batch (`par::par_map` workers).
    pub batch_parallelism: usize,
    /// Largest batch one worker coalesces per queue pop.
    pub batch_max: usize,
    /// How long a worker lingers for stragglers after a partial pop.
    pub batch_linger_micros: u64,
    /// Queue capacity; pushes beyond it are rejected with HTTP 429.
    pub queue_capacity: usize,
    /// Total cached responses across all shards.
    pub cache_capacity: usize,
    /// Cache shard count (power of two recommended).
    pub cache_shards: usize,
    /// Default (and maximum) per-request deadline; clients may lower it
    /// with the `X-Racellm-Deadline-Ms` header. Expiry is HTTP 504.
    pub deadline_ms: u64,
    /// Socket read-poll granularity: how often idle keep-alive
    /// connections re-check the drain flag, and how long a mid-request
    /// stall may last before 408.
    pub poll_ms: u64,
    /// Concurrent connection cap; excess connections get HTTP 503.
    pub max_connections: usize,
    /// Largest accepted request body (413 beyond).
    pub max_body_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:8077".to_string(),
            batch_workers: 2,
            batch_parallelism: par::default_workers(),
            batch_max: 16,
            batch_linger_micros: 200,
            queue_capacity: 256,
            cache_capacity: 4096,
            cache_shards: 8,
            deadline_ms: 2000,
            poll_ms: 200,
            max_connections: 256,
            max_body_bytes: 1 << 20,
        }
    }
}
