//! The kernel → JSON-verdict engine behind `POST /v1/analyze`.
//!
//! One deterministic pure function ([`response_body`]) produces the
//! response for a kernel, so the cache can store serialized bytes and a
//! hit is guaranteed byte-identical to a fresh computation. The
//! analysis itself is the same stack the rest of the workspace uses:
//! one [`llm::AnalyzedKernel`] per kernel (parse/tokenize/feature-pass
//! exactly once), `racecheck` for the static verdict, `hbsan`'s
//! adversarial schedule sweep over [`xcheck::DEFAULT_SEEDS`] for the
//! dynamic one, and the shared [`xcheck::Verdicts`] adapter for the
//! consensus summary.

use llm::{feature_verdict, AnalyzedKernel, ModelKind};
use serde::{Deserialize, Serialize};
use xcheck::{Verdicts, DEFAULT_SEEDS};

/// Wire request: `{"code": "..."}`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzeRequest {
    /// The C/OpenMP kernel source to analyze.
    pub code: String,
}

/// Per-model surrogate verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireModel {
    /// Model short name (`GPT3`/`GPT4`/`SC`/`LM`).
    pub model: String,
    /// Feature-based race verdict at that model's analysis depth.
    pub verdict: bool,
}

/// The three-detector verdict block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireVerdicts {
    /// `racecheck` static verdict (`null` when the kernel fails to parse).
    #[serde(rename = "static")]
    pub static_verdict: Option<bool>,
    /// `hbsan` dynamic verdict (`null` on parse or runtime error).
    pub dynamic: Option<bool>,
    /// Surrogate-LLM verdict at GPT-4 depth (always available — the
    /// feature extractor degrades gracefully on unparseable code).
    pub llm: bool,
    /// Unanimous verdict, when all three detectors agree.
    pub consensus: Option<bool>,
}

/// Racing variable pair in the paper's variable-identification wire
/// shape (the same keys `eval::parse_pairs` reads from LLM responses).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WirePairs {
    /// Root variable names of the two conflicting accesses.
    pub variable_names: Vec<String>,
    /// Source lines of the two accesses.
    pub line_numbers: Vec<u32>,
    /// `"read"` / `"write"` per access.
    pub operations: Vec<String>,
}

/// Full `POST /v1/analyze` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeResponse {
    /// Token count of the trimmed kernel (the paper's 4k-filter count).
    pub tokens: usize,
    /// Whether the kernel parsed.
    pub parse_ok: bool,
    /// Parse error message when `parse_ok` is false.
    pub parse_error: Option<String>,
    /// Three-detector verdict block.
    pub verdicts: WireVerdicts,
    /// Static race descriptions (`a[i+1]@3:18:R vs. a[i]@3:13:W`).
    pub static_races: Vec<String>,
    /// Dynamic race descriptions (capped at 5, like `Pipeline::analyze`).
    pub dynamic_races: Vec<String>,
    /// Per-model surrogate verdicts, Table-3 order.
    pub models: Vec<WireModel>,
    /// First racing variable pair (static detector), if any.
    pub var_pairs: Option<WirePairs>,
}

fn op_word(kind: depend::AccessKind) -> &'static str {
    match kind {
        depend::AccessKind::Read => "read",
        depend::AccessKind::Write => "write",
    }
}

/// Analyze one kernel with every detector in the workspace.
///
/// Deterministic: same source ⇒ same response, regardless of worker
/// count or timing (hbsan's sweep is seed-deterministic by PR 2's
/// equivalence suite).
pub fn analyze_code(source: &str) -> AnalyzeResponse {
    analyze_code_traced(source).0
}

/// [`analyze_code`] plus a side channel: whether the dynamic sweep fell
/// back from the bytecode executor to the AST interpreter (lowering
/// rejected the kernel, or the executor hit a runtime error and the
/// interpreter re-ran it). The flag never affects the response bytes —
/// it only feeds the `racellm_oracle_fallbacks_total` counter, so cache
/// hits and fresh computations stay byte-identical.
pub fn analyze_code_traced(source: &str) -> (AnalyzeResponse, bool) {
    let trimmed = minic::trim_comments(source);
    let (ast, parse_error) = match minic::parse(&trimmed.code) {
        Ok(unit) => (Some(unit), None),
        Err(e) => (None, Some(e.to_string())),
    };
    let artifact = AnalyzedKernel::from_parsed(&trimmed.code, ast);

    let models: Vec<WireModel> = ModelKind::ALL
        .iter()
        .map(|k| WireModel {
            model: k.short().to_string(),
            verdict: feature_verdict(&artifact.features, *k),
        })
        .collect();
    let llm_verdict = feature_verdict(&artifact.features, ModelKind::Gpt4);

    let mut fell_back = false;
    let (verdicts, static_races, dynamic_races, var_pairs) = match &artifact.ast {
        Some(unit) => {
            let st = racecheck::check(unit);
            let (dynamic, dynamic_races) = match hbsan::check_adversarial_compiled(
                unit,
                artifact.oracle_program(),
                &hbsan::Config::default(),
                &DEFAULT_SEEDS,
            ) {
                Ok(sweep) => {
                    fell_back = sweep.fell_back;
                    let rep = sweep.report;
                    let races: Vec<String> =
                        rep.races.iter().take(5).map(hbsan::DynRace::describe).collect();
                    (Some(rep.has_race()), races)
                }
                // A sweep error means even the interpreter fallback
                // could not execute the kernel.
                Err(_) => {
                    fell_back = true;
                    (None, Vec::new())
                }
            };
            let v = Verdicts { stat: st.has_race(), dynv: dynamic, llm: llm_verdict };
            let pairs = st.races.first().map(|r| WirePairs {
                variable_names: vec![r.first.var.clone(), r.second.var.clone()],
                line_numbers: vec![r.first.span.line(), r.second.span.line()],
                operations: vec![op_word(r.first.kind).into(), op_word(r.second.kind).into()],
            });
            let verdicts = WireVerdicts {
                static_verdict: Some(v.stat),
                dynamic: v.dynv,
                llm: v.llm,
                consensus: v.consensus(),
            };
            let races: Vec<String> = st.races.iter().map(racecheck::Race::describe).collect();
            (verdicts, races, dynamic_races, pairs)
        }
        None => (
            WireVerdicts {
                static_verdict: None,
                dynamic: None,
                llm: llm_verdict,
                consensus: None,
            },
            Vec::new(),
            Vec::new(),
            None,
        ),
    };

    let resp = AnalyzeResponse {
        tokens: artifact.tokens.len(),
        parse_ok: parse_error.is_none(),
        parse_error,
        verdicts,
        static_races,
        dynamic_races,
        models,
        var_pairs,
    };
    (resp, fell_back)
}

/// The canonical serialized response for a kernel — exactly the bytes
/// the server caches and ships (compact JSON, stable field order).
pub fn response_body(source: &str) -> String {
    response_body_traced(source).0
}

/// [`response_body`] plus the oracle-fallback flag (see
/// [`analyze_code_traced`]).
pub fn response_body_traced(source: &str) -> (String, bool) {
    let (resp, fell_back) = analyze_code_traced(source);
    (serde_json::to_string(&resp).expect("response serialization is infallible"), fell_back)
}

#[cfg(test)]
mod tests {
    use super::*;

    const RACY: &str = "int a[64];\nint main() {\n  int i;\n  #pragma omp parallel for\n  for (i = 0; i < 61; i++) {\n    a[i] = a[i + 1] + 1;\n  }\n  return 0;\n}\n";
    const CLEAN: &str = "int a[64];\nint main() {\n  int i;\n  #pragma omp parallel for\n  for (i = 0; i < 64; i++) {\n    a[i] = i * 2;\n  }\n  return 0;\n}\n";

    #[test]
    fn racy_kernel_is_unanimous() {
        let r = analyze_code(RACY);
        assert!(r.parse_ok);
        assert_eq!(r.verdicts.static_verdict, Some(true));
        assert_eq!(r.verdicts.dynamic, Some(true));
        assert!(r.verdicts.llm);
        assert_eq!(r.verdicts.consensus, Some(true));
        assert!(!r.static_races.is_empty());
        let pairs = r.var_pairs.expect("static race yields a pair");
        assert_eq!(pairs.variable_names, vec!["a", "a"]);
        assert_eq!(pairs.variable_names.len(), pairs.line_numbers.len());
        assert_eq!(pairs.operations.len(), 2);
        assert_eq!(r.models.len(), 4);
    }

    #[test]
    fn clean_kernel_is_clean() {
        let r = analyze_code(CLEAN);
        assert_eq!(r.verdicts.consensus, Some(false));
        assert!(r.static_races.is_empty());
        assert!(r.var_pairs.is_none());
    }

    #[test]
    fn unparseable_code_degrades() {
        let r = analyze_code("int main() { this is not C");
        assert!(!r.parse_ok);
        assert!(r.parse_error.is_some());
        assert_eq!(r.verdicts.static_verdict, None);
        assert_eq!(r.verdicts.dynamic, None);
        assert_eq!(r.models.len(), 4);
    }

    #[test]
    fn body_is_deterministic_and_round_trips() {
        let a = response_body(RACY);
        let b = response_body(RACY);
        assert_eq!(a, b);
        let back: AnalyzeResponse = serde_json::from_str(&a).unwrap();
        assert_eq!(back, analyze_code(RACY));
    }

    #[test]
    fn matches_verdict_adapter() {
        for code in [RACY, CLEAN] {
            let r = analyze_code(code);
            let v = xcheck::verdicts_of_code(code).unwrap();
            assert_eq!(r.verdicts.static_verdict, Some(v.stat));
            assert_eq!(r.verdicts.dynamic, v.dynv);
            assert_eq!(r.verdicts.llm, v.llm);
            assert_eq!(r.verdicts.consensus, v.consensus());
        }
    }
}
