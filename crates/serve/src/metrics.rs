//! Prometheus-text metrics: counters, gauges, and histograms over
//! lock-free atomics.
//!
//! The hot path (one request) touches a handful of relaxed atomic adds;
//! rendering walks the fixed metric tree and prints the standard
//! exposition format (`# TYPE … counter|gauge|histogram`, cumulative
//! `le` buckets, `_sum`/`_count`). Cardinality is bounded by
//! construction: routes and statuses are closed enums, histogram bucket
//! bounds are compile-time slices.

use crate::cache::CacheStats;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram. Buckets are cumulative at render time (the
/// per-bucket atomics store non-cumulative counts so `observe` is one
/// add).
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [f64],
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl Histogram {
    /// Build over ascending bucket upper bounds (an implicit `+Inf`
    /// bucket is appended).
    pub fn new(bounds: &'static [f64]) -> Histogram {
        Histogram {
            bounds,
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
        }
    }

    /// Record one observation (same unit as the bounds).
    pub fn observe(&self, v: f64) {
        let i = self.bounds.iter().position(|&b| v <= b).unwrap_or(self.bounds.len());
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add((v * 1e6).max(0.0) as u64, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, name: &str, out: &mut String) {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, b) in self.bounds.iter().enumerate() {
            cum += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(out, "{name}_bucket{{le=\"{b}\"}} {cum}");
        }
        cum += self.buckets[self.bounds.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
        let sum = self.sum_micros.load(Ordering::Relaxed) as f64 / 1e6;
        let _ = writeln!(out, "{name}_sum {sum}");
        let _ = writeln!(out, "{name}_count {}", self.count());
    }
}

/// Routes with per-status request counters.
pub const ROUTES: [&str; 5] = ["analyze", "fix", "healthz", "metrics", "other"];
/// Statuses the service can emit.
pub const STATUSES: [u16; 12] = [200, 400, 404, 405, 408, 413, 414, 429, 431, 500, 503, 504];

/// Index of the catch-all `other` route (pre-routing errors land here).
pub const OTHER_ROUTE: usize = ROUTES.len() - 1;

/// Route index for a request target.
pub fn route_index(target: &str) -> usize {
    match target {
        "/v1/analyze" => 0,
        "/v1/fix" => 1,
        "/healthz" => 2,
        "/metrics" => 3,
        _ => OTHER_ROUTE,
    }
}

/// Request-latency bucket bounds (seconds).
pub static LATENCY_BOUNDS: [f64; 12] =
    [0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5];
/// Batch-size bucket bounds (requests per batch).
pub static BATCH_BOUNDS: [f64; 6] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];

/// The service's full metric tree.
#[derive(Debug)]
pub struct Metrics {
    requests: Vec<Counter>, // ROUTES × STATUSES, row-major
    /// Accepted TCP connections.
    pub connections_total: Counter,
    /// Connections turned away at the cap (503 before routing).
    pub connections_rejected_total: Counter,
    /// Live connection handler threads.
    pub connections_active: Gauge,
    /// Requests that failed HTTP parsing (4xx before routing).
    pub http_parse_errors_total: Counter,
    /// Jobs rejected because the queue was full (429).
    pub queue_rejected_total: Counter,
    /// Analyze requests that hit their deadline (504).
    pub deadline_expired_total: Counter,
    /// Jobs a worker skipped because they were already expired.
    pub worker_expired_total: Counter,
    /// Analyses whose dynamic sweep fell back from the bytecode
    /// executor to the AST interpreter (lowering rejected the kernel,
    /// or the executor erred and the interpreter re-ran it).
    pub oracle_fallbacks_total: Counter,
    /// `POST /v1/fix` requests handled (any status, cache hits
    /// included).
    pub fix_requests_total: Counter,
    /// Certified patches produced by the worker pool (fresh
    /// computations only — a cache hit replays the body without
    /// re-certifying).
    pub fix_certified_total: Counter,
    /// Queue depth after the most recent push/pop.
    pub queue_depth: Gauge,
    /// Micro-batches executed.
    pub batches_total: Counter,
    /// Requests per micro-batch.
    pub batch_size: Histogram,
    /// End-to-end latency of analyze requests (seconds).
    pub request_seconds: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, all-zero tree.
    pub fn new() -> Metrics {
        Metrics {
            requests: (0..ROUTES.len() * STATUSES.len()).map(|_| Counter::default()).collect(),
            connections_total: Counter::default(),
            connections_rejected_total: Counter::default(),
            connections_active: Gauge::default(),
            http_parse_errors_total: Counter::default(),
            queue_rejected_total: Counter::default(),
            deadline_expired_total: Counter::default(),
            worker_expired_total: Counter::default(),
            oracle_fallbacks_total: Counter::default(),
            fix_requests_total: Counter::default(),
            fix_certified_total: Counter::default(),
            queue_depth: Gauge::default(),
            batches_total: Counter::default(),
            batch_size: Histogram::new(&BATCH_BOUNDS),
            request_seconds: Histogram::new(&LATENCY_BOUNDS),
        }
    }

    /// Count one response on a route.
    pub fn record(&self, route: usize, status: u16) {
        let s = STATUSES.iter().position(|&x| x == status).unwrap_or_else(|| {
            debug_assert!(false, "unregistered status {status}");
            STATUSES.len() - 1
        });
        self.requests[route * STATUSES.len() + s].inc();
    }

    /// Read one route × status cell.
    pub fn requests_get(&self, route: usize, status: u16) -> u64 {
        STATUSES
            .iter()
            .position(|&x| x == status)
            .map(|s| self.requests[route * STATUSES.len() + s].get())
            .unwrap_or(0)
    }

    /// Total responses across all routes and statuses.
    pub fn requests_total(&self) -> u64 {
        self.requests.iter().map(Counter::get).sum()
    }

    /// Render the Prometheus exposition text, folding in cache state.
    pub fn render(&self, cache: &CacheStats) -> String {
        let mut out = String::with_capacity(4096);
        let w = &mut out;
        let _ = writeln!(w, "# TYPE racellm_http_requests_total counter");
        for (ri, route) in ROUTES.iter().enumerate() {
            for (si, status) in STATUSES.iter().enumerate() {
                let v = self.requests[ri * STATUSES.len() + si].get();
                if v > 0 {
                    let _ = writeln!(
                        w,
                        "racellm_http_requests_total{{route=\"{route}\",status=\"{status}\"}} {v}"
                    );
                }
            }
        }
        for (name, c) in [
            ("racellm_connections_total", &self.connections_total),
            ("racellm_connections_rejected_total", &self.connections_rejected_total),
            ("racellm_http_parse_errors_total", &self.http_parse_errors_total),
            ("racellm_queue_rejected_total", &self.queue_rejected_total),
            ("racellm_deadline_expired_total", &self.deadline_expired_total),
            ("racellm_worker_expired_total", &self.worker_expired_total),
            ("racellm_oracle_fallbacks_total", &self.oracle_fallbacks_total),
            ("racellm_fix_requests_total", &self.fix_requests_total),
            ("racellm_fix_certified_total", &self.fix_certified_total),
            ("racellm_batches_total", &self.batches_total),
        ] {
            let _ = writeln!(w, "# TYPE {name} counter\n{name} {}", c.get());
        }
        for (name, v) in [
            ("racellm_connections_active", self.connections_active.get()),
            ("racellm_queue_depth", self.queue_depth.get()),
            ("racellm_cache_entries", cache.entries as i64),
        ] {
            let _ = writeln!(w, "# TYPE {name} gauge\n{name} {v}");
        }
        for (name, v) in [
            ("racellm_cache_hits_total", cache.hits),
            ("racellm_cache_misses_total", cache.misses),
            ("racellm_cache_insertions_total", cache.insertions),
            ("racellm_cache_evictions_total", cache.evictions),
        ] {
            let _ = writeln!(w, "# TYPE {name} counter\n{name} {v}");
        }
        self.request_seconds.render("racellm_request_seconds", w);
        self.batch_size.render("racellm_batch_size", w);
        out
    }
}

/// Read one plain (unlabelled) sample back out of exposition text —
/// the loadgen and smoke gate use this to diff scrapes.
pub fn scrape_value(text: &str, name: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_cache() -> CacheStats {
        CacheStats { hits: 0, misses: 0, insertions: 0, evictions: 0, entries: 0 }
    }

    #[test]
    fn counters_and_cells() {
        let m = Metrics::new();
        m.record(route_index("/v1/analyze"), 200);
        m.record(route_index("/v1/analyze"), 200);
        m.record(route_index("/nope"), 404);
        m.record(route_index("/v1/fix"), 200);
        assert_eq!(m.requests_get(0, 200), 2);
        assert_eq!(m.requests_get(1, 200), 1);
        assert_eq!(m.requests_get(OTHER_ROUTE, 404), 1);
        assert_eq!(m.requests_total(), 4);
        let text = m.render(&no_cache());
        assert!(text.contains("racellm_http_requests_total{route=\"analyze\",status=\"200\"} 2"));
        assert!(text.contains("racellm_http_requests_total{route=\"fix\",status=\"200\"} 1"));
        assert!(text.contains("racellm_http_requests_total{route=\"other\",status=\"404\"} 1"));
        assert!(text.contains("racellm_fix_requests_total 0"));
        assert!(text.contains("racellm_fix_certified_total 0"));
    }

    #[test]
    fn histogram_is_cumulative() {
        let h = Histogram::new(&BATCH_BOUNDS);
        h.observe(1.0);
        h.observe(3.0);
        h.observe(100.0);
        let mut out = String::new();
        h.render("x", &mut out);
        assert!(out.contains("x_bucket{le=\"1\"} 1"));
        assert!(out.contains("x_bucket{le=\"4\"} 2"));
        assert!(out.contains("x_bucket{le=\"+Inf\"} 3"));
        assert!(out.contains("x_count 3"));
    }

    #[test]
    fn scrape_round_trips() {
        let m = Metrics::new();
        m.deadline_expired_total.inc();
        let text = m.render(&no_cache());
        assert_eq!(scrape_value(&text, "racellm_deadline_expired_total"), Some(1.0));
        assert_eq!(scrape_value(&text, "racellm_cache_hits_total"), Some(0.0));
        assert_eq!(scrape_value(&text, "racellm_not_a_metric"), None);
    }
}
