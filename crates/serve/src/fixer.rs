//! The kernel → certified-patch engine behind `POST /v1/fix`.
//!
//! Same contract as [`crate::analyze`]: one deterministic pure function
//! ([`fix_body`]) produces the response bytes for a kernel, so the
//! response cache can store them and a hit is guaranteed byte-identical
//! to a fresh computation. The repair itself is `repair::fix` — the
//! full detect → candidate → certify → minimize loop — and the wire
//! response carries the machine-checkable certificate verbatim.

use crate::analyze::WireVerdicts;
use serde::{Deserialize, Serialize};

/// Wire request: `{"code": "..."}` (same shape as `/v1/analyze`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FixRequest {
    /// The C/OpenMP kernel source to repair.
    pub code: String,
}

/// The certificate attached to a fixed kernel, as shipped on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireCertificate {
    /// `racecheck` reports zero races on the patched kernel.
    pub racecheck_clean: bool,
    /// Seeds the adversarial happens-before sweep verified race-free.
    pub hbsan_seeds: Vec<u64>,
    /// Seeds with byte-identical observable output vs the original.
    pub equivalent_seeds: Vec<u64>,
    /// Globals excluded from the output comparison (privatized by the
    /// patch).
    pub scratch: Vec<String>,
    /// Surrogate-LLM verdict on the patched kernel (evidence, not a
    /// gate).
    pub surrogate_clean: bool,
}

/// A certified patch on the wire.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireFix {
    /// Edit labels, e.g. `["add-reduction(sum)"]`.
    pub edits: Vec<String>,
    /// The patched kernel, canonically printed.
    pub patched_code: String,
    /// Unified diff from the (canonically printed) original.
    pub patch: String,
    /// Added-plus-removed line count of `patch`.
    pub patch_lines: usize,
    /// The evidence.
    pub certificate: WireCertificate,
}

/// Full `POST /v1/fix` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixResponse {
    /// Whether the kernel parsed.
    pub parse_ok: bool,
    /// `clean` / `fixed` / `unfixed` / `unparseable`.
    pub outcome: String,
    /// The original kernel's three-detector verdict block (`null` when
    /// it does not parse).
    pub verdicts: Option<WireVerdicts>,
    /// Candidates that reached certification.
    pub candidates_tried: usize,
    /// The certified patch, when `outcome` is `fixed`.
    pub fix: Option<WireFix>,
}

/// Run the repair loop on one kernel.
///
/// Deterministic: same source ⇒ same response (the repair loop's
/// candidate order, certification seeds, and minimizer are all fixed).
pub fn fix_code(source: &str) -> FixResponse {
    fix_code_traced(source).0
}

/// [`fix_code`] plus two side channels that never affect the response
/// bytes: whether any dynamic run fell back from the bytecode executor
/// to the AST interpreter (feeds `racellm_oracle_fallbacks_total`), and
/// whether a certified fix was produced *by this computation* (feeds
/// `racellm_fix_certified_total`; cache hits replay the body without
/// re-certifying, so they do not move that counter).
pub fn fix_code_traced(source: &str) -> (FixResponse, bool, bool) {
    let trimmed = minic::trim_comments(source);
    let report = repair::fix(&trimmed.code, &repair::RepairConfig::default());

    let verdicts = report.verdicts.as_ref().map(|v| WireVerdicts {
        static_verdict: Some(v.stat),
        dynamic: v.dynv,
        llm: v.llm,
        consensus: v.consensus(),
    });
    let fix = report.fix().map(|f| WireFix {
        edits: f.edits.iter().map(repair::edit_label).collect(),
        patched_code: f.patched_code.clone(),
        patch: f.patch.clone(),
        patch_lines: f.patch_lines,
        certificate: WireCertificate {
            racecheck_clean: f.certificate.racecheck_clean,
            hbsan_seeds: f.certificate.hbsan_seeds.clone(),
            equivalent_seeds: f.certificate.equivalent_seeds.clone(),
            scratch: f.certificate.scratch.clone(),
            surrogate_clean: f.certificate.surrogate_clean,
        },
    });
    let certified = fix.is_some();
    let resp = FixResponse {
        parse_ok: report.verdicts.is_some(),
        outcome: report.outcome.tag().to_string(),
        verdicts,
        candidates_tried: report.candidates_tried,
        fix,
    };
    (resp, report.fell_back, certified)
}

/// The canonical serialized response for a kernel — exactly the bytes
/// the server caches and ships.
pub fn fix_body(source: &str) -> String {
    fix_body_traced(source).0
}

/// [`fix_body`] plus the two side-channel flags (see
/// [`fix_code_traced`]).
pub fn fix_body_traced(source: &str) -> (String, bool, bool) {
    let (resp, fell_back, certified) = fix_code_traced(source);
    (
        serde_json::to_string(&resp).expect("response serialization is infallible"),
        fell_back,
        certified,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const RACY_SUM: &str = "int sum;\nint main() {\n  #pragma omp parallel for\n  for (int i = 0; i < 64; i++) sum += i;\n  return sum;\n}\n";
    const CLEAN: &str = "int a[64];\nint main() {\n  #pragma omp parallel for\n  for (int i = 0; i < 64; i++) a[i] = i * 2;\n  return 0;\n}\n";

    #[test]
    fn racy_kernel_gets_a_certified_wire_fix() {
        let (r, _fell_back, certified) = fix_code_traced(RACY_SUM);
        assert!(r.parse_ok);
        assert_eq!(r.outcome, "fixed");
        assert!(certified);
        let f = r.fix.expect("fix present");
        assert_eq!(f.edits, vec!["add-reduction(sum)"]);
        assert!(f.patch.contains("reduction(+: sum)"));
        assert!(f.certificate.racecheck_clean);
        assert_eq!(f.certificate.hbsan_seeds, f.certificate.equivalent_seeds);
    }

    #[test]
    fn clean_kernel_reports_clean() {
        let (r, _, certified) = fix_code_traced(CLEAN);
        assert_eq!(r.outcome, "clean");
        assert!(!certified);
        assert!(r.fix.is_none());
        assert_eq!(r.verdicts.unwrap().consensus, Some(false));
    }

    #[test]
    fn unparseable_kernel_degrades() {
        let (r, _, certified) = fix_code_traced("int main() {");
        assert_eq!(r.outcome, "unparseable");
        assert!(!r.parse_ok && !certified);
        assert!(r.verdicts.is_none());
    }

    #[test]
    fn body_is_deterministic_and_round_trips() {
        let a = fix_body(RACY_SUM);
        assert_eq!(a, fix_body(RACY_SUM));
        let back: FixResponse = serde_json::from_str(&a).unwrap();
        assert_eq!(back, fix_code(RACY_SUM));
    }

    #[test]
    fn comments_do_not_change_the_verdict() {
        let commented = format!("/* racy reduction */\n{RACY_SUM}");
        assert_eq!(fix_code(&commented).outcome, "fixed");
    }
}
