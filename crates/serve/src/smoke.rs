//! `racellm-cli serve --smoke` — the tier-1 serving gate.
//!
//! Boots the full service on an ephemeral port, drives a small request
//! mix over real sockets — health check, a cold and a warm analyze of
//! the same racy kernel (asserting byte-identical bodies and a cache
//! hit), one malformed request (400), one forced deadline expiry (504)
//! — verifies every expected metrics delta, and drains cleanly. Any
//! violated invariant returns `Err` with the failing check named.

use crate::analyze::{AnalyzeRequest, AnalyzeResponse};
use crate::fixer::FixResponse;
use crate::http::client::Client;
use crate::metrics::OTHER_ROUTE;
use crate::server::{start, ServerHandle};
use crate::ServeConfig;
use std::fmt::Write as _;
use std::time::Duration;

const RACY: &str = "int a[64];\nint main() {\n  int i;\n  #pragma omp parallel for\n  for (i = 0; i < 61; i++) {\n    a[i] = a[i + 1] + 1;\n  }\n  return 0;\n}\n";
const FRESH: &str = "int y[32];\nint main() {\n  int i;\n  #pragma omp parallel for\n  for (i = 0; i < 32; i++) {\n    y[i] = i;\n  }\n  return 0;\n}\n";
const RACY_SUM: &str = "int sum;\nint main() {\n  #pragma omp parallel for\n  for (int i = 0; i < 64; i++) sum += i;\n  return sum;\n}\n";

fn ensure(ok: bool, what: &str) -> Result<(), String> {
    if ok {
        Ok(())
    } else {
        Err(format!("smoke check failed: {what}"))
    }
}

fn post_json(
    client: &mut Client,
    target: &str,
    code: &str,
    headers: &[(&str, String)],
) -> Result<(u16, String), String> {
    let body = serde_json::to_string(&AnalyzeRequest { code: code.to_string() })
        .expect("request serializes");
    let (status, bytes) = client
        .request("POST", target, headers, body.as_bytes())
        .map_err(|e| format!("{target} request failed: {e}"))?;
    Ok((status, String::from_utf8_lossy(&bytes).into_owned()))
}

fn post_analyze(
    client: &mut Client,
    code: &str,
    headers: &[(&str, String)],
) -> Result<(u16, String), String> {
    post_json(client, "/v1/analyze", code, headers)
}

fn run_mix(h: &ServerHandle, out: &mut String) -> Result<(), String> {
    let timeout = Duration::from_secs(10);
    let mut client =
        Client::connect(h.addr(), timeout).map_err(|e| format!("connect failed: {e}"))?;

    // 1. Health.
    let (status, body) =
        client.request("GET", "/healthz", &[], b"").map_err(|e| format!("healthz: {e}"))?;
    ensure(status == 200, "healthz returns 200")?;
    ensure(String::from_utf8_lossy(&body).contains("\"ok\":true"), "healthz body")?;

    // 2. Cold analyze of a racy kernel.
    let (status, cold) = post_analyze(&mut client, RACY, &[])?;
    ensure(status == 200, "cold analyze returns 200")?;
    let parsed: AnalyzeResponse =
        serde_json::from_str(&cold).map_err(|e| format!("response not valid JSON: {e}"))?;
    ensure(parsed.verdicts.static_verdict == Some(true), "racy kernel: static verdict")?;
    ensure(parsed.verdicts.consensus == Some(true), "racy kernel: unanimous consensus")?;
    ensure(parsed.var_pairs.is_some(), "racy kernel: var_pairs present")?;

    // 3. Warm repeat: byte-identical, served from cache.
    let (status, warm) = post_analyze(&mut client, RACY, &[])?;
    ensure(status == 200, "warm analyze returns 200")?;
    ensure(warm == cold, "warm response byte-identical to cold")?;
    let stats = h.cache().stats();
    ensure(stats.hits == 1, "exactly one cache hit after the repeat")?;
    ensure(h.cache().len() == 1, "identical kernels share one cache entry")?;

    // 4. Deadline expiry: zero budget on an uncached kernel.
    let (status, _) =
        post_analyze(&mut client, FRESH, &[("x-racellm-deadline-ms", "0".to_string())])?;
    ensure(status == 504, "zero-deadline analyze returns 504")?;

    // 5. Certified repair: cold fix of a racy reduction, then a warm
    //    repeat that must be a byte-identical cache hit.
    let (status, cold_fix) = post_json(&mut client, "/v1/fix", RACY_SUM, &[])?;
    ensure(status == 200, "cold fix returns 200")?;
    let parsed: FixResponse =
        serde_json::from_str(&cold_fix).map_err(|e| format!("fix response not JSON: {e}"))?;
    ensure(parsed.outcome == "fixed", "racy sum kernel gets fixed")?;
    let wire_fix = parsed.fix.ok_or("fix block missing from fixed response")?;
    ensure(wire_fix.patch.contains("reduction(+: sum)"), "patch adds the reduction clause")?;
    ensure(wire_fix.certificate.racecheck_clean, "certificate claims racecheck clean")?;
    let (status, warm_fix) = post_json(&mut client, "/v1/fix", RACY_SUM, &[])?;
    ensure(status == 200, "warm fix returns 200")?;
    ensure(warm_fix == cold_fix, "warm fix byte-identical to cold")?;

    // 6. Malformed request on a fresh connection (the server closes it).
    let mut bad =
        Client::connect(h.addr(), timeout).map_err(|e| format!("connect failed: {e}"))?;
    bad.send_raw(b"THIS IS NOT HTTP\r\n\r\n").map_err(|e| format!("send garbage: {e}"))?;
    let (status, _) = bad.read_response().map_err(|e| format!("garbage response: {e}"))?;
    ensure(status == 400, "malformed request line returns 400")?;

    // 7. Metrics deltas, scraped over HTTP like a real Prometheus.
    let (status, text) =
        client.request("GET", "/metrics", &[], b"").map_err(|e| format!("metrics: {e}"))?;
    ensure(status == 200, "metrics returns 200")?;
    let text = String::from_utf8_lossy(&text).into_owned();
    let m = h.metrics();
    ensure(m.requests_get(0, 200) == 2, "two analyze 200s recorded")?;
    ensure(m.requests_get(0, 504) == 1, "one analyze 504 recorded")?;
    ensure(m.requests_get(1, 200) == 2, "two fix 200s recorded")?;
    ensure(m.fix_requests_total.get() == 2, "fix request counter moved twice")?;
    ensure(m.fix_certified_total.get() == 1, "exactly one fresh certification (hit replays)")?;
    ensure(m.deadline_expired_total.get() == 1, "deadline counter moved")?;
    ensure(m.http_parse_errors_total.get() == 1, "parse-error counter moved")?;
    ensure(m.requests_get(OTHER_ROUTE, 400) == 1, "one 400 recorded")?;
    ensure(m.batches_total.get() >= 1, "worker pool executed a batch")?;
    ensure(
        text.contains("racellm_http_requests_total{route=\"analyze\",status=\"200\"} 2"),
        "exposition text carries the analyze counter",
    )?;
    ensure(
        text.contains("racellm_http_requests_total{route=\"fix\",status=\"200\"} 2"),
        "exposition text carries the fix counter",
    )?;
    ensure(
        text.contains("racellm_fix_certified_total 1"),
        "exposition text carries the certification counter",
    )?;
    ensure(
        text.contains("racellm_cache_hits_total 2"),
        "exposition text carries both cache hits",
    )?;

    let _ = writeln!(
        out,
        "serve smoke ok: healthz + 2 analyze + 2 fix (cached repeats byte-identical) + 504 deadline + 400 malformed on {}",
        h.addr()
    );
    Ok(())
}

/// Run the gate. Returns the human summary on success.
pub fn run() -> Result<String, String> {
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        batch_workers: 2,
        batch_max: 8,
        queue_capacity: 32,
        cache_capacity: 64,
        deadline_ms: 5000,
        poll_ms: 25,
        ..ServeConfig::default()
    };
    let h = start(cfg).map_err(|e| format!("bind failed: {e}"))?;
    let mut out = String::new();

    let mix = run_mix(&h, &mut out);
    let report = h.shutdown();
    mix?;

    if report.jobs_leftover != 0 {
        return Err(format!("drain left {} jobs queued", report.jobs_leftover));
    }
    // The racy kernel was analyzed once; the zero-deadline kernel is
    // also processed (and cached) by the pool even though its client
    // had already timed out.
    if report.jobs_processed < 1 {
        return Err("worker pool processed no jobs".to_string());
    }
    let _ = writeln!(
        out,
        "serve smoke ok: clean drain ({} jobs processed, 0 leftover)",
        report.jobs_processed
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn smoke_gate_passes() {
        let summary = super::run().expect("smoke gate");
        assert!(summary.contains("clean drain"));
    }
}
