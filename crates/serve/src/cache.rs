//! Sharded, FxHash-keyed LRU cache of serialized analysis responses.
//!
//! The detectors are deterministic (PR 2/PR 3 equivalence suites), so
//! the serialized response for a kernel is a pure function of its
//! source bytes — the cache stores those bytes verbatim and a hit is
//! byte-identical to a fresh computation by construction. Keys are the
//! *full* kernel source (an `Arc<str>` shared with the entry), never
//! just the hash: a hash decides the shard and the bucket, but lookup
//! compares the complete key, so a collision can never serve a
//! cross-kernel response.
//!
//! Each shard is an independent `Mutex` around a classic O(1) LRU —
//! an index-linked list over a slot arena plus an
//! [`FxHashMap`](par::hash::FxHashMap) from key to slot — so
//! connection handlers on different kernels rarely contend.

use par::hash::{FxBuildHasher, FxHashMap};
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const NIL: usize = usize::MAX;

struct Slot {
    key: Arc<str>,
    val: Arc<str>,
    prev: usize,
    next: usize,
}

struct Shard {
    cap: usize,
    map: FxHashMap<Arc<str>, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl Shard {
    fn new(cap: usize) -> Shard {
        Shard {
            cap,
            map: FxHashMap::default(),
            slots: Vec::with_capacity(cap.min(1024)),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, i: usize) {
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &str) -> Option<Arc<str>> {
        let &i = self.map.get(key)?;
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
        Some(Arc::clone(&self.slots[i].val))
    }

    /// Returns `true` when an entry was evicted to make room.
    fn insert(&mut self, key: &str, val: Arc<str>) -> bool {
        if let Some(&i) = self.map.get(key) {
            // Idempotent refresh: identical kernels produce identical
            // bodies, so overwriting is byte-equivalent either way.
            self.slots[i].val = val;
            if self.head != i {
                self.unlink(i);
                self.push_front(i);
            }
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.cap {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL);
            self.unlink(lru);
            let old = self.slots[lru].key.clone();
            self.map.remove(&old);
            self.free.push(lru);
            evicted = true;
        }
        let key: Arc<str> = Arc::from(key);
        let slot = Slot { key: Arc::clone(&key), val, prev: NIL, next: NIL };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        self.map.insert(key, i);
        self.push_front(i);
        evicted
    }
}

/// Point-in-time cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries written (including idempotent refreshes).
    pub insertions: u64,
    /// Entries evicted under capacity pressure.
    pub evictions: u64,
    /// Live entries across all shards.
    pub entries: usize,
}

/// The sharded LRU.
pub struct ShardedLru {
    shards: Vec<Mutex<Shard>>,
    hasher: FxBuildHasher,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedLru {
    /// `capacity` total entries spread over `shards` shards (each shard
    /// holds at least one).
    pub fn new(capacity: usize, shards: usize) -> ShardedLru {
        let shards = shards.max(1);
        let per_shard = (capacity.max(1)).div_ceil(shards);
        ShardedLru {
            shards: (0..shards).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            hasher: FxBuildHasher::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let h = self.hasher.hash_one(key.as_bytes());
        // High bits: the low bits already picked the bucket inside the
        // shard's map; reusing them would correlate shard and bucket.
        &self.shards[(h >> 48) as usize % self.shards.len()]
    }

    /// Look a kernel up; counts a hit or a miss.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        let out = self.shard(key).lock().expect("cache shard poisoned").get(key);
        match out {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        out
    }

    /// Insert (or refresh) a kernel's serialized response.
    pub fn insert(&self, key: &str, val: Arc<str>) {
        let evicted = self.shard(key).lock().expect("cache shard poisoned").insert(key, val);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Live entry count across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("cache shard poisoned").map.len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn hit_and_miss_counters_move() {
        let c = ShardedLru::new(8, 2);
        assert!(c.get("k1").is_none());
        c.insert("k1", v("v1"));
        assert_eq!(c.get("k1").as_deref(), Some("v1"));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions, s.entries), (1, 1, 1, 1));
    }

    #[test]
    fn single_shard_evicts_lru_order() {
        let c = ShardedLru::new(2, 1);
        c.insert("a", v("A"));
        c.insert("b", v("B"));
        assert_eq!(c.get("a").as_deref(), Some("A")); // refresh a
        c.insert("c", v("C")); // evicts b
        assert_eq!(c.len(), 2);
        assert!(c.get("b").is_none());
        assert_eq!(c.get("a").as_deref(), Some("A"));
        assert_eq!(c.get("c").as_deref(), Some("C"));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_is_idempotent() {
        let c = ShardedLru::new(4, 1);
        c.insert("k", v("same"));
        c.insert("k", v("same"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn never_serves_cross_key_values() {
        // Heavy churn through a tiny cache: every hit must carry the
        // value derived from its own key.
        let c = ShardedLru::new(16, 4);
        for round in 0..4 {
            for i in 0..200 {
                let k = format!("kernel-{i}");
                c.insert(&k, Arc::from(format!("body-of-{i}")));
                let probe = format!("kernel-{}", (i * 7 + round) % 200);
                if let Some(got) = c.get(&probe) {
                    assert_eq!(&*got, &format!("body-of-{}", (i * 7 + round) % 200));
                }
            }
        }
        assert!(c.len() <= 16 + 3, "len {} exceeds capacity (+shard rounding)", c.len());
        assert!(c.stats().evictions > 0);
    }
}
