//! Closed-loop, socket-level load generator for the detection service.
//!
//! `racellm-cli loadgen` drives a running server (or spins one up
//! in-process — the sockets are real either way) with N keep-alive
//! client threads, each looping pick-kernel → POST → await-response.
//! The kernel mix is the full DRB corpus, offset per client so the
//! warmup pass populates the cache and the measured window exercises
//! the steady warm-cache state the acceptance criteria target. Latency
//! is recorded per request in the measured window only; the report
//! (written to `BENCH_serve.json`) carries throughput, p50/p90/p99,
//! per-status counts, the cache hit rate over the window, and the
//! batch-size distribution scraped from `/metrics`.

use crate::analyze::AnalyzeRequest;
use crate::http::client::Client;
use crate::metrics::scrape_value;
use serde::Serialize;
use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load profile knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target server.
    pub addr: SocketAddr,
    /// Closed-loop client connections.
    pub clients: usize,
    /// Warmup (unmeasured) window.
    pub warmup: Duration,
    /// Measured window.
    pub duration: Duration,
    /// Where to write the JSON report (`None` = don't write).
    pub out: Option<std::path::PathBuf>,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:8077".parse().expect("static addr parses"),
            clients: 32,
            warmup: Duration::from_secs(1),
            duration: Duration::from_secs(3),
            out: Some(std::path::PathBuf::from("BENCH_serve.json")),
        }
    }
}

/// Latency summary (milliseconds).
#[derive(Debug, Clone, Serialize)]
pub struct LatencyMs {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed.
    pub max: f64,
}

/// Per-status counts over the measured window.
#[derive(Debug, Clone, Default, Serialize)]
pub struct StatusCounts {
    /// HTTP 200.
    pub ok_200: u64,
    /// HTTP 429 (queue full).
    pub rejected_429: u64,
    /// HTTP 504 (deadline).
    pub expired_504: u64,
    /// Any 5xx.
    pub server_5xx: u64,
    /// Everything else.
    pub other: u64,
}

/// The `BENCH_serve.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Bench identifier.
    pub bench: String,
    /// Client connections.
    pub clients: usize,
    /// Distinct kernels in the request mix.
    pub kernels: usize,
    /// Warmup seconds (unmeasured).
    pub warmup_secs: f64,
    /// Measured seconds.
    pub duration_secs: f64,
    /// Completed requests in the measured window.
    pub requests: u64,
    /// Requests per second over the measured window.
    pub throughput_rps: f64,
    /// Latency percentiles.
    pub latency_ms: LatencyMs,
    /// Status breakdown.
    pub status: StatusCounts,
    /// Cache hit rate over the measured window (from `/metrics` deltas).
    pub cache_hit_rate: f64,
    /// Cumulative batch-size histogram from `/metrics` (bound → count).
    pub batch_size_buckets: Vec<(String, u64)>,
    /// Mean batch size over the server's lifetime.
    pub mean_batch_size: f64,
}

const PHASE_WARMUP: u8 = 0;
const PHASE_MEASURE: u8 = 1;
const PHASE_STOP: u8 = 2;

struct ClientStats {
    latencies_us: Vec<u64>,
    status: StatusCounts,
}

fn render_request(code: &str) -> Vec<u8> {
    let body = serde_json::to_string(&AnalyzeRequest { code: code.to_string() })
        .expect("request serializes");
    format!(
        "POST /v1/analyze HTTP/1.1\r\nhost: racellm\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

fn client_loop(
    addr: SocketAddr,
    requests: &[Vec<u8>],
    offset: usize,
    phase: &AtomicU8,
) -> io::Result<ClientStats> {
    let mut client = Client::connect(addr, Duration::from_secs(10))?;
    let mut stats =
        ClientStats { latencies_us: Vec::with_capacity(1 << 16), status: StatusCounts::default() };
    let mut i = offset;
    loop {
        let p = phase.load(Ordering::Relaxed);
        if p == PHASE_STOP {
            break;
        }
        let req = &requests[i % requests.len()];
        i += 1;
        let t0 = Instant::now();
        client.send_raw(req)?;
        let (status, _body) = client.read_response()?;
        if p == PHASE_MEASURE {
            stats.latencies_us.push(t0.elapsed().as_micros() as u64);
            match status {
                200 => stats.status.ok_200 += 1,
                429 => stats.status.rejected_429 += 1,
                504 => stats.status.expired_504 += 1,
                500..=599 => stats.status.server_5xx += 1,
                _ => stats.status.other += 1,
            }
        }
    }
    Ok(stats)
}

fn percentile(sorted_us: &[u64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    // Nearest-rank: the smallest value with at least p% of the sample
    // at or below it.
    let rank = ((p / 100.0) * sorted_us.len() as f64).ceil() as usize;
    sorted_us[rank.saturating_sub(1).min(sorted_us.len() - 1)] as f64 / 1000.0
}

fn scrape(addr: SocketAddr) -> io::Result<String> {
    let mut c = Client::connect(addr, Duration::from_secs(5))?;
    let (status, body) = c.request("GET", "/metrics", &[], b"")?;
    if status != 200 {
        return Err(io::Error::other(format!("metrics scrape returned {status}")));
    }
    String::from_utf8(body).map_err(|_| io::Error::other("metrics not UTF-8"))
}

/// Run the closed loop and build the report (writes `cfg.out` if set).
pub fn run(cfg: &LoadgenConfig) -> io::Result<LoadReport> {
    let corpus = drb_gen::corpus();
    let requests: Arc<Vec<Vec<u8>>> =
        Arc::new(corpus.iter().map(|k| render_request(&k.trimmed_code)).collect());
    let kernels = requests.len();
    let phase = Arc::new(AtomicU8::new(PHASE_WARMUP));

    let handles: Vec<_> = (0..cfg.clients.max(1))
        .map(|c| {
            let requests = Arc::clone(&requests);
            let phase = Arc::clone(&phase);
            let addr = cfg.addr;
            // Spread client cursors over the corpus so the warmup pass
            // touches every kernel quickly.
            let offset = c * kernels / cfg.clients.max(1);
            std::thread::spawn(move || client_loop(addr, &requests, offset, &phase))
        })
        .collect();

    std::thread::sleep(cfg.warmup);
    let pre = scrape(cfg.addr)?;
    phase.store(PHASE_MEASURE, Ordering::Relaxed);
    let t0 = Instant::now();
    std::thread::sleep(cfg.duration);
    phase.store(PHASE_STOP, Ordering::Relaxed);
    let measured = t0.elapsed();
    let post = scrape(cfg.addr)?;

    let mut latencies: Vec<u64> = Vec::new();
    let mut status = StatusCounts::default();
    for h in handles {
        let s = h
            .join()
            .map_err(|_| io::Error::other("client thread panicked"))?
            .map_err(|e| io::Error::other(format!("client I/O failed: {e}")))?;
        latencies.extend(s.latencies_us);
        status.ok_200 += s.status.ok_200;
        status.rejected_429 += s.status.rejected_429;
        status.expired_504 += s.status.expired_504;
        status.server_5xx += s.status.server_5xx;
        status.other += s.status.other;
    }
    latencies.sort_unstable();

    let delta = |name: &str| -> f64 {
        scrape_value(&post, name).unwrap_or(0.0) - scrape_value(&pre, name).unwrap_or(0.0)
    };
    let hits = delta("racellm_cache_hits_total");
    let misses = delta("racellm_cache_misses_total");
    let cache_hit_rate = if hits + misses > 0.0 { hits / (hits + misses) } else { 0.0 };

    let mut batch_size_buckets = Vec::new();
    for line in post.lines() {
        if let Some(rest) = line.strip_prefix("racellm_batch_size_bucket{le=\"") {
            if let Some((bound, count)) = rest.split_once("\"} ") {
                if let Ok(n) = count.trim().parse::<u64>() {
                    batch_size_buckets.push((bound.to_string(), n));
                }
            }
        }
    }
    let batches = scrape_value(&post, "racellm_batch_size_count").unwrap_or(0.0);
    let batched_jobs = scrape_value(&post, "racellm_batch_size_sum").unwrap_or(0.0);
    let mean_batch_size = if batches > 0.0 { batched_jobs / batches } else { 0.0 };

    let requests_done = latencies.len() as u64;
    let report = LoadReport {
        bench: "serve_closed_loop".to_string(),
        clients: cfg.clients,
        kernels,
        warmup_secs: cfg.warmup.as_secs_f64(),
        duration_secs: measured.as_secs_f64(),
        requests: requests_done,
        throughput_rps: requests_done as f64 / measured.as_secs_f64(),
        latency_ms: LatencyMs {
            p50: percentile(&latencies, 50.0),
            p90: percentile(&latencies, 90.0),
            p99: percentile(&latencies, 99.0),
            max: latencies.last().map(|&us| us as f64 / 1000.0).unwrap_or(0.0),
        },
        status,
        cache_hit_rate,
        batch_size_buckets,
        mean_batch_size,
    };

    if let Some(path) = &cfg.out {
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        std::fs::write(path, json + "\n")?;
    }
    Ok(report)
}

/// One-line human summary of a report.
pub fn summarize(r: &LoadReport) -> String {
    format!(
        "{} clients × {:.1}s: {} requests, {:.0} req/s, p50 {:.2}ms p99 {:.2}ms, cache hit rate {:.1}%, mean batch {:.2}, 5xx {}",
        r.clients,
        r.duration_secs,
        r.requests,
        r.throughput_rps,
        r.latency_ms.p50,
        r.latency_ms.p99,
        r.cache_hit_rate * 100.0,
        r.mean_batch_size,
        r.status.server_5xx,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let us: Vec<u64> = (1..=100).map(|i| i * 1000).collect();
        assert_eq!(percentile(&us, 50.0), 50.0);
        assert_eq!(percentile(&us, 99.0), 99.0);
        assert_eq!(percentile(&us, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn request_rendering_is_valid_http() {
        let raw = render_request("int main() { return 0; }");
        let mut conn = crate::http::Conn::new(std::io::Cursor::new(raw));
        let req = crate::http::read_request(&mut conn, &crate::http::Limits::default()).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/analyze");
        let wire: AnalyzeRequest =
            serde_json::from_str(std::str::from_utf8(&req.body).unwrap()).unwrap();
        assert_eq!(wire.code, "int main() { return 0; }");
    }
}
