//! Hand-rolled, hard-limited HTTP/1.1 over `std::net`.
//!
//! The build environment has no crates.io access, so there is no hyper
//! to lean on; this module implements the small subset the service
//! needs — request parsing with keep-alive, `Content-Length` bodies,
//! and a response writer — with explicit limits everywhere a client
//! could otherwise make the server allocate or loop unboundedly:
//! request-line length, header-line length, header count, and body
//! size. Malformed input maps to a 4xx status and *never* panics or
//! hangs (the proptest suite in `tests/http_fuzz.rs` holds it to that).
//!
//! The parser is generic over [`std::io::Read`] so fuzzing runs over
//! in-memory cursors while the server runs it over `TcpStream`s with a
//! read timeout; timeouts surface as [`RecvError::Idle`] (no bytes of
//! the next request yet — keep-alive poll) or [`RecvError::Truncated`]
//! (stalled mid-request — 408).

use std::io::{self, Read, Write};

/// Parser limits. Defaults: 8 KiB lines, 64 headers, 1 MiB body.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Longest accepted request or header line (bytes, excluding CRLF).
    pub max_line: usize,
    /// Maximum number of headers.
    pub max_headers: usize,
    /// Largest accepted `Content-Length`.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_line: 8192, max_headers: 64, max_body: 1 << 20 }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Method token (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Request target (`/v1/analyze`).
    pub target: String,
    /// Header `(name, value)` pairs in order; names as sent.
    pub headers: Vec<(String, String)>,
    /// Body bytes (empty without `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First header value with the given name, case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RecvError {
    /// Clean EOF before the first byte of a request (keep-alive close).
    Closed,
    /// Read timeout before the first byte (idle keep-alive poll tick).
    Idle,
    /// Syntactically invalid request → 400.
    Malformed(&'static str),
    /// Request line exceeded `max_line` → 414.
    UriTooLong,
    /// Too many headers or an oversized header line → 431.
    HeaderFlood,
    /// `Content-Length` exceeds `max_body` → 413.
    BodyTooLarge,
    /// EOF or stall in the middle of a request → 408.
    Truncated,
    /// Underlying transport error.
    Io(io::Error),
}

impl RecvError {
    /// The 4xx response owed to the client, if any (`None` means just
    /// close the connection).
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            RecvError::Malformed(msg) => Some((400, msg)),
            RecvError::UriTooLong => Some((414, "request line too long")),
            RecvError::HeaderFlood => Some((431, "too many or oversized headers")),
            RecvError::BodyTooLarge => Some((413, "body exceeds limit")),
            RecvError::Truncated => Some((408, "request incomplete")),
            RecvError::Closed | RecvError::Idle | RecvError::Io(_) => None,
        }
    }
}

/// Buffered connection reader; owns the parse state between keep-alive
/// requests.
pub struct Conn<R> {
    r: R,
    buf: Vec<u8>,
    start: usize,
    end: usize,
    /// Bytes of the *current* request consumed so far (distinguishes
    /// `Closed`/`Idle` from `Truncated`).
    seen: bool,
}

impl<R: Read> Conn<R> {
    /// Wrap a transport.
    pub fn new(r: R) -> Conn<R> {
        Conn { r, buf: vec![0; 16 * 1024], start: 0, end: 0, seen: false }
    }

    /// The transport back (for writing on the same socket).
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.r
    }

    fn fill(&mut self) -> Result<(), RecvError> {
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
        if self.end == self.buf.len() {
            // Compact; callers bound total consumption, so this cannot
            // grow without limit.
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.start = 0;
        }
        match self.r.read(&mut self.buf[self.end..]) {
            Ok(0) => Err(if self.seen { RecvError::Truncated } else { RecvError::Closed }),
            Ok(n) => {
                self.end += n;
                Ok(())
            }
            Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
                Err(if self.seen { RecvError::Truncated } else { RecvError::Idle })
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => self.fill(),
            Err(e) => Err(RecvError::Io(e)),
        }
    }

    fn next_byte(&mut self) -> Result<u8, RecvError> {
        while self.start == self.end {
            self.fill()?;
        }
        let b = self.buf[self.start];
        self.start += 1;
        self.seen = true;
        Ok(b)
    }

    /// Read one line, stripping the trailing `\n` and optional `\r`.
    fn read_line(&mut self, max: usize, over: fn() -> RecvError) -> Result<String, RecvError> {
        let mut line: Vec<u8> = Vec::with_capacity(64);
        loop {
            let b = self.next_byte()?;
            if b == b'\n' {
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return String::from_utf8(line)
                    .map_err(|_| RecvError::Malformed("non-UTF-8 header data"));
            }
            if line.len() >= max {
                return Err(over());
            }
            line.push(b);
        }
    }

    fn read_exact_body(&mut self, len: usize) -> Result<Vec<u8>, RecvError> {
        let mut body = Vec::with_capacity(len.min(64 * 1024));
        while body.len() < len {
            if self.start == self.end {
                self.fill()?;
            }
            let take = (self.end - self.start).min(len - body.len());
            body.extend_from_slice(&self.buf[self.start..self.start + take]);
            self.start += take;
            self.seen = true;
        }
        Ok(body)
    }
}

fn is_token(s: &str) -> bool {
    !s.is_empty()
        && s.bytes().all(|b| {
            b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
        })
}

/// Read one request off the connection.
///
/// Returns [`RecvError::Idle`] when the transport timed out with no
/// request in flight (the server's keep-alive/drain poll tick) and
/// [`RecvError::Closed`] on clean EOF between requests.
pub fn read_request<R: Read>(conn: &mut Conn<R>, limits: &Limits) -> Result<Request, RecvError> {
    conn.seen = false;

    // Request line; tolerate a little leading CRLF noise (RFC 9112 §2.2).
    let mut line = String::new();
    for _ in 0..4 {
        line = conn.read_line(limits.max_line, || RecvError::UriTooLong)?;
        if !line.is_empty() {
            break;
        }
        conn.seen = false;
    }
    if line.is_empty() {
        return Err(RecvError::Malformed("empty request line"));
    }

    let mut parts = line.split(' ');
    let (method, target, version) =
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v), None) if is_token(m) && !t.is_empty() => {
                (m.to_string(), t.to_string(), v)
            }
            _ => return Err(RecvError::Malformed("malformed request line")),
        };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(RecvError::Malformed("unsupported HTTP version")),
    };

    // Headers.
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = conn.read_line(limits.max_line, || RecvError::HeaderFlood)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(RecvError::HeaderFlood);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RecvError::Malformed("header without colon"));
        };
        if !is_token(name) {
            return Err(RecvError::Malformed("invalid header name"));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    // Body framing: strict Content-Length only.
    if headers.iter().any(|(n, _)| n.eq_ignore_ascii_case("transfer-encoding")) {
        return Err(RecvError::Malformed("transfer-encoding not supported"));
    }
    let mut content_length: Option<usize> = None;
    for (n, v) in &headers {
        if n.eq_ignore_ascii_case("content-length") {
            if content_length.is_some() {
                return Err(RecvError::Malformed("duplicate content-length"));
            }
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(RecvError::Malformed("invalid content-length"));
            }
            let parsed: usize =
                v.parse().map_err(|_| RecvError::Malformed("invalid content-length"))?;
            if parsed > limits.max_body {
                return Err(RecvError::BodyTooLarge);
            }
            content_length = Some(parsed);
        }
    }
    let body = match content_length {
        Some(n) if n > 0 => conn.read_exact_body(n)?,
        _ => Vec::new(),
    };

    // Keep-alive: 1.1 defaults on, 1.0 defaults off.
    let mut keep_alive = http11;
    if let Some(c) = headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case("connection"))
        .map(|(_, v)| v.as_str())
    {
        if c.eq_ignore_ascii_case("close") {
            keep_alive = false;
        } else if c.eq_ignore_ascii_case("keep-alive") {
            keep_alive = true;
        }
    }

    Ok(Request { method, target, headers, body, keep_alive })
}

/// Canonical reason phrase for the statuses the service emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        414 => "URI Too Long",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Write a complete response (status line, headers, body).
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    content_type: &str,
    extra: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {}\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (n, v) in extra {
        head.push_str(n);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// `{"error": "..."}` body for non-200 responses.
pub fn error_body(msg: &str) -> String {
    serde_json::to_string(&serde_json::json!({ "error": msg })).expect("error body serializes")
}

/// A minimal blocking HTTP/1.1 client over one keep-alive connection —
/// enough for the load generator, the smoke gate, and the integration
/// tests to drive the server over real sockets.
pub mod client {
    use super::{Conn, Limits, RecvError};
    use std::io::{self, Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::time::Duration;

    /// One keep-alive client connection.
    pub struct Client {
        writer: TcpStream,
        conn: Conn<TcpStream>,
    }

    impl Client {
        /// Connect with the given I/O timeout.
        pub fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            stream.set_read_timeout(Some(timeout))?;
            stream.set_write_timeout(Some(timeout))?;
            let writer = stream.try_clone()?;
            Ok(Client { writer, conn: Conn::new(stream) })
        }

        /// Send raw bytes (a pre-rendered request) on the connection.
        pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
            self.writer.write_all(bytes)?;
            self.writer.flush()
        }

        /// Issue one request and read the response.
        pub fn request(
            &mut self,
            method: &str,
            target: &str,
            headers: &[(&str, String)],
            body: &[u8],
        ) -> io::Result<(u16, Vec<u8>)> {
            let mut req = format!("{method} {target} HTTP/1.1\r\nhost: racellm\r\n");
            if !body.is_empty() || method == "POST" {
                req.push_str("content-type: application/json\r\n");
                req.push_str(&format!("content-length: {}\r\n", body.len()));
            }
            for (n, v) in headers {
                req.push_str(&format!("{n}: {v}\r\n"));
            }
            req.push_str("\r\n");
            self.writer.write_all(req.as_bytes())?;
            self.writer.write_all(body)?;
            self.writer.flush()?;
            self.read_response()
        }

        /// Read one `(status, body)` response off the connection.
        pub fn read_response(&mut self) -> io::Result<(u16, Vec<u8>)> {
            read_response_from(&mut self.conn)
        }
    }

    /// Parse one response from any buffered connection.
    pub fn read_response_from<R: Read>(conn: &mut Conn<R>) -> io::Result<(u16, Vec<u8>)> {
        let limits = Limits::default();
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let to_io = |e: RecvError| match e {
            RecvError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, format!("{other:?}")),
        };
        conn.seen = false;
        let status_line = conn.read_line(limits.max_line, || RecvError::UriTooLong).map_err(to_io)?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad(&format!("bad status line: {status_line}")))?;
        let mut content_length = 0usize;
        loop {
            let line = conn.read_line(limits.max_line, || RecvError::HeaderFlood).map_err(to_io)?;
            if line.is_empty() {
                break;
            }
            if let Some((n, v)) = line.split_once(':') {
                if n.eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().map_err(|_| bad("bad content-length"))?;
                }
            }
        }
        let body = conn.read_exact_body(content_length).map_err(to_io)?;
        Ok((status, body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &[u8]) -> Result<Request, RecvError> {
        read_request(&mut Conn::new(Cursor::new(raw.to_vec())), &Limits::default())
    }

    #[test]
    fn parses_simple_get() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/healthz");
        assert!(r.keep_alive);
        assert_eq!(r.header("host"), Some("x"));
    }

    #[test]
    fn parses_body_and_lf_only_lines() {
        let r = parse(b"POST /v1/analyze HTTP/1.1\nContent-Length: 4\n\nabcd").unwrap();
        assert_eq!(r.body, b"abcd");
    }

    #[test]
    fn http10_defaults_to_close() {
        let r = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
    }

    #[test]
    fn rejects_garbage_and_duplicates() {
        assert!(matches!(parse(b"NOT A REQUEST AT ALL\r\n\r\n"), Err(RecvError::Malformed(_))));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nab"),
            Err(RecvError::Malformed("duplicate content-length"))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"),
            Err(RecvError::Malformed("invalid content-length"))
        ));
    }

    #[test]
    fn truncated_body_is_not_a_hang() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(RecvError::Truncated)
        ));
    }

    #[test]
    fn oversized_content_length_is_413() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", usize::MAX);
        assert!(matches!(parse(raw.as_bytes()), Err(RecvError::Malformed(_) | RecvError::BodyTooLarge)));
        let raw = "POST / HTTP/1.1\r\nContent-Length: 9999999\r\n\r\n";
        assert!(matches!(parse(raw.as_bytes()), Err(RecvError::BodyTooLarge)));
    }

    #[test]
    fn header_flood_is_431() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..200 {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        raw.push_str("\r\n");
        assert!(matches!(parse(raw.as_bytes()), Err(RecvError::HeaderFlood)));
    }

    #[test]
    fn eof_between_requests_is_closed() {
        assert!(matches!(parse(b""), Err(RecvError::Closed)));
    }

    #[test]
    fn response_writer_round_trips() {
        let mut out = Vec::new();
        write_response(&mut out, 429, "application/json", &[("retry-after", "1".into())], b"{}", true)
            .unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        let mut conn = Conn::new(Cursor::new(out));
        let (status, body) = client::read_response_from(&mut conn).unwrap();
        assert_eq!(status, 429);
        assert_eq!(body, b"{}");
    }
}
