//! `racellm-cli` — command-line front door.
//!
//! ```text
//! racellm-cli analyze <file.c>            run every detector on a C/OpenMP file
//! racellm-cli modality <file.c> <kind>    print source|ast|depgraph|cfg
//! racellm-cli dataset <out_dir>           export the DRB-ML JSON dataset
//! racellm-cli corpus                      list the 201 corpus kernels
//! racellm-cli xcheck --smoke [seed]       deterministic differential smoke gate
//! racellm-cli xcheck report [seed]        full sweep with shrunk disagreement triage
//! ```

use racellm::{drb_gen, drb_ml, llm, xcheck, Pipeline};

fn usage() -> ! {
    eprintln!(
        "usage:\n  racellm-cli analyze <file.c>\n  racellm-cli modality <file.c> <source|ast|depgraph|cfg>\n  racellm-cli dataset <out_dir>\n  racellm-cli corpus\n  racellm-cli xcheck --smoke [seed]\n  racellm-cli xcheck report [seed]"
    );
    std::process::exit(2);
}

/// Accept decimal or `0x…` hex seeds.
fn parse_seed(s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("bad seed: {s}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let pipeline = Pipeline::new();
            let trimmed = racellm::minic::trim_comments(&src);
            match pipeline.analyze(&src) {
                Ok(r) => {
                    println!("tokens: {}", r.tokens);
                    // Compiler-style static diagnostics against the
                    // trimmed code (what the line numbers refer to).
                    if let Ok(report) = racellm::racecheck::check_source(&trimmed.code) {
                        println!("{}", report.render(&trimmed.code));
                    }
                    println!("static  : race = {}", r.static_verdict);
                    for race in &r.static_races {
                        println!("  {race}");
                    }
                    println!("dynamic : race = {}", r.dynamic_verdict);
                    for race in r.dynamic_races.iter().take(5) {
                        println!("  {race}");
                    }
                    for (m, text, _) in &r.llm_answers {
                        println!("{m:4}: {text}");
                    }
                    std::process::exit(i32::from(r.static_verdict || r.dynamic_verdict));
                }
                Err(e) => {
                    eprintln!("parse error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("modality") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let kind = match args.get(2).map(String::as_str) {
                Some("source") => llm::Modality::SourceText,
                Some("ast") => llm::Modality::AstSexpr,
                Some("depgraph") => llm::Modality::DependenceGraph,
                Some("cfg") => llm::Modality::ControlFlowGraph,
                _ => usage(),
            };
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let trimmed = racellm::minic::trim_comments(&src);
            println!("{}", llm::render_modality(&trimmed.code, kind));
        }
        Some("dataset") => {
            let out = std::path::PathBuf::from(args.get(1).unwrap_or_else(|| usage()));
            drb_ml::Dataset::generate().export_dir(&out).unwrap_or_else(|e| {
                eprintln!("export failed: {e}");
                std::process::exit(1);
            });
            println!("exported 201 DRB-ML entries to {}", out.display());
        }
        Some("xcheck") => {
            let mode = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let seed = match args.get(2) {
                Some(s) => parse_seed(s),
                None => xcheck::XConfig::default().seed,
            };
            match mode {
                "--smoke" => match xcheck::smoke(seed) {
                    Ok(r) => {
                        println!(
                            "xcheck smoke ok: {} kernels + {} flips, {} sem-mutants, {} disagreements ({} dyn errors)",
                            r.generated,
                            r.flips,
                            r.sem_mutants,
                            r.disagreements.len(),
                            r.dyn_errors
                        );
                        print!("{}", r.matrix.render());
                    }
                    Err(e) => {
                        eprintln!("xcheck smoke FAILED:\n{e}");
                        std::process::exit(1);
                    }
                },
                "report" => {
                    let cfg = xcheck::XConfig { seed, ..Default::default() };
                    print!("{}", xcheck::render_report(&xcheck::run(&cfg)));
                }
                _ => usage(),
            }
        }
        Some("corpus") => {
            for k in drb_gen::corpus() {
                println!(
                    "{:40} {} {:18} {}",
                    k.name,
                    if k.race { "yes" } else { "no " },
                    k.category.as_str(),
                    k.description
                );
            }
        }
        _ => usage(),
    }
}
