//! `racellm-cli` — command-line front door.
//!
//! ```text
//! racellm-cli analyze <file.c>            run every detector on a C/OpenMP file
//! racellm-cli modality <file.c> <kind>    print source|ast|depgraph|cfg
//! racellm-cli dataset <out_dir>           export the DRB-ML JSON dataset
//! racellm-cli corpus                      list the 201 corpus kernels
//! racellm-cli xcheck --smoke [seed]       deterministic differential smoke gate
//! racellm-cli xcheck report [seed]        full sweep with shrunk disagreement triage
//! racellm-cli fix <file.c>                repair a racy kernel, print certified patch
//! racellm-cli fix --corpus                corpus-wide repair-rate table
//! racellm-cli fix --smoke                 deterministic repair smoke gate
//! racellm-cli serve [--smoke] [opts]      batched, cached HTTP detection service
//! racellm-cli loadgen [opts]              closed-loop load generator → BENCH_serve.json
//! ```

use racellm::{drb_gen, drb_ml, llm, repair, serve, xcheck, Pipeline};

fn usage() -> ! {
    eprintln!(
        "usage:\n  racellm-cli analyze <file.c>\n  racellm-cli modality <file.c> <source|ast|depgraph|cfg>\n  racellm-cli dataset <out_dir>\n  racellm-cli corpus\n  racellm-cli xcheck --smoke [seed]\n  racellm-cli xcheck report [seed]\n  racellm-cli fix <file.c> | --corpus | --smoke\n  racellm-cli serve [--smoke] [--addr HOST:PORT] [--workers N] [--batch-max N]\n                    [--queue-cap N] [--cache-cap N] [--deadline-ms N]\n  racellm-cli loadgen [--addr HOST:PORT] [--clients N] [--duration-secs N]\n                      [--warmup-secs N] [--out PATH]  (no --addr: self-serve)"
    );
    std::process::exit(2);
}

/// Parse `--flag value` pairs from `args`, erroring on unknown flags.
fn parse_flags(args: &[String], allowed: &[&str]) -> Vec<(String, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        if !allowed.contains(&flag) {
            eprintln!("unknown flag: {flag}");
            usage();
        }
        let Some(value) = args.get(i + 1) else {
            eprintln!("{flag} needs a value");
            usage();
        };
        out.push((flag.to_string(), value.clone()));
        i += 2;
    }
    out
}

fn flag_num<T: std::str::FromStr>(flags: &[(String, String)], name: &str, default: T) -> T {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("bad value for {name}: {v}");
                std::process::exit(2);
            })
        })
        .unwrap_or(default)
}

fn flag_str(flags: &[(String, String)], name: &str) -> Option<String> {
    flags.iter().rev().find(|(n, _)| n == name).map(|(_, v)| v.clone())
}

fn cmd_serve(args: &[String]) -> ! {
    if args.first().map(String::as_str) == Some("--smoke") {
        match serve::smoke::run() {
            Ok(summary) => {
                print!("{summary}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("serve smoke FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    let flags = parse_flags(
        args,
        &["--addr", "--workers", "--batch-max", "--queue-cap", "--cache-cap", "--deadline-ms"],
    );
    let defaults = serve::ServeConfig::default();
    let cfg = serve::ServeConfig {
        addr: flag_str(&flags, "--addr").unwrap_or(defaults.addr.clone()),
        batch_workers: flag_num(&flags, "--workers", defaults.batch_workers),
        batch_max: flag_num(&flags, "--batch-max", defaults.batch_max),
        queue_capacity: flag_num(&flags, "--queue-cap", defaults.queue_capacity),
        cache_capacity: flag_num(&flags, "--cache-cap", defaults.cache_capacity),
        deadline_ms: flag_num(&flags, "--deadline-ms", defaults.deadline_ms),
        ..defaults
    };
    match serve::server::start(cfg) {
        Ok(handle) => {
            println!("racellm-serve listening on http://{}", handle.addr());
            println!("  POST /v1/analyze   GET /healthz   GET /metrics");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        Err(e) => {
            eprintln!("serve failed to start: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_fix(args: &[String]) -> ! {
    let cfg = repair::RepairConfig::default();
    match args.first().map(String::as_str) {
        Some("--smoke") => match repair::smoke() {
            Ok(summary) => {
                print!("{summary}");
                std::process::exit(0);
            }
            Err(e) => {
                eprintln!("repair smoke FAILED: {e}");
                std::process::exit(1);
            }
        },
        Some("--corpus") => {
            let summary = repair::sweep_corpus(&cfg);
            print!("{}", repair::render_table(&summary));
            std::process::exit(0);
        }
        Some(path) => {
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let trimmed = racellm::minic::trim_comments(&src);
            let r = repair::fix(&trimmed.code, &cfg);
            if let Some(v) = &r.verdicts {
                println!("detect  : {}", v.summary());
            }
            println!("outcome : {} ({} candidate(s) certified)", r.outcome.tag(), r.candidates_tried);
            match r.fix() {
                Some(f) => {
                    let edits: Vec<String> = f.edits.iter().map(repair::edit_label).collect();
                    println!("edits   : {}", edits.join("+"));
                    println!(
                        "cert    : racecheck clean, hbsan clean on seeds {:?}, output-equivalent on seeds {:?}{}",
                        f.certificate.hbsan_seeds,
                        f.certificate.equivalent_seeds,
                        if f.certificate.scratch.is_empty() {
                            String::new()
                        } else {
                            format!(" (scratch: {})", f.certificate.scratch.join(", "))
                        }
                    );
                    println!(
                        "surrogate: {}",
                        if f.certificate.surrogate_clean { "clean" } else { "still suspicious" }
                    );
                    print!("{}", f.patch);
                    std::process::exit(0);
                }
                None => std::process::exit(match r.outcome {
                    repair::Outcome::CleanAlready => 0,
                    repair::Outcome::Unparseable => 2,
                    _ => 1,
                }),
            }
        }
        None => usage(),
    }
}

fn cmd_loadgen(args: &[String]) -> ! {
    let flags = parse_flags(
        args,
        &["--addr", "--clients", "--duration-secs", "--warmup-secs", "--out"],
    );
    let defaults = serve::loadgen::LoadgenConfig::default();
    // Without --addr, spin an in-process server on an ephemeral port and
    // drive it over real sockets (the acceptance-bench configuration).
    let self_serve = match flag_str(&flags, "--addr") {
        Some(_) => None,
        None => {
            let cfg =
                serve::ServeConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() };
            let handle = serve::server::start(cfg).unwrap_or_else(|e| {
                eprintln!("self-serve failed to start: {e}");
                std::process::exit(1);
            });
            println!("self-serve on http://{}", handle.addr());
            Some(handle)
        }
    };
    let addr = match &self_serve {
        Some(h) => h.addr(),
        None => flag_str(&flags, "--addr").expect("checked above").parse().unwrap_or_else(|e| {
            eprintln!("bad --addr: {e}");
            std::process::exit(2);
        }),
    };
    let cfg = serve::loadgen::LoadgenConfig {
        addr,
        clients: flag_num(&flags, "--clients", defaults.clients),
        duration: std::time::Duration::from_secs_f64(flag_num(
            &flags,
            "--duration-secs",
            defaults.duration.as_secs_f64(),
        )),
        warmup: std::time::Duration::from_secs_f64(flag_num(
            &flags,
            "--warmup-secs",
            defaults.warmup.as_secs_f64(),
        )),
        out: Some(
            flag_str(&flags, "--out").map(Into::into).unwrap_or_else(|| "BENCH_serve.json".into()),
        ),
    };
    match serve::loadgen::run(&cfg) {
        Ok(report) => {
            println!("{}", serve::loadgen::summarize(&report));
            if let Some(h) = self_serve {
                let drain = h.shutdown();
                println!(
                    "drained: {} jobs processed, {} leftover",
                    drain.jobs_processed, drain.jobs_leftover
                );
            }
            std::process::exit(i32::from(report.status.server_5xx > 0));
        }
        Err(e) => {
            eprintln!("loadgen failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Accept decimal or `0x…` hex seeds.
fn parse_seed(s: &str) -> u64 {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.unwrap_or_else(|_| {
        eprintln!("bad seed: {s}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let pipeline = Pipeline::new();
            let trimmed = racellm::minic::trim_comments(&src);
            match pipeline.analyze(&src) {
                Ok(r) => {
                    println!("tokens: {}", r.tokens);
                    // Compiler-style static diagnostics against the
                    // trimmed code (what the line numbers refer to).
                    if let Ok(report) = racellm::racecheck::check_source(&trimmed.code) {
                        println!("{}", report.render(&trimmed.code));
                    }
                    println!("static  : race = {}", r.static_verdict);
                    for race in &r.static_races {
                        println!("  {race}");
                    }
                    println!("dynamic : race = {}", r.dynamic_verdict);
                    for race in r.dynamic_races.iter().take(5) {
                        println!("  {race}");
                    }
                    for (m, text, _) in &r.llm_answers {
                        println!("{m:4}: {text}");
                    }
                    std::process::exit(i32::from(r.static_verdict || r.dynamic_verdict));
                }
                Err(e) => {
                    eprintln!("parse error: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("modality") => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let kind = match args.get(2).map(String::as_str) {
                Some("source") => llm::Modality::SourceText,
                Some("ast") => llm::Modality::AstSexpr,
                Some("depgraph") => llm::Modality::DependenceGraph,
                Some("cfg") => llm::Modality::ControlFlowGraph,
                _ => usage(),
            };
            let src = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let trimmed = racellm::minic::trim_comments(&src);
            println!("{}", llm::render_modality(&trimmed.code, kind));
        }
        Some("dataset") => {
            let out = std::path::PathBuf::from(args.get(1).unwrap_or_else(|| usage()));
            drb_ml::Dataset::generate().export_dir(&out).unwrap_or_else(|e| {
                eprintln!("export failed: {e}");
                std::process::exit(1);
            });
            println!("exported 201 DRB-ML entries to {}", out.display());
        }
        Some("xcheck") => {
            let mode = args.get(1).map(String::as_str).unwrap_or_else(|| usage());
            let seed = match args.get(2) {
                Some(s) => parse_seed(s),
                None => xcheck::XConfig::default().seed,
            };
            match mode {
                "--smoke" => match xcheck::smoke(seed) {
                    Ok(r) => {
                        println!(
                            "xcheck smoke ok: {} kernels + {} flips, {} sem-mutants, {} disagreements ({} dyn errors)",
                            r.generated,
                            r.flips,
                            r.sem_mutants,
                            r.disagreements.len(),
                            r.dyn_errors
                        );
                        print!("{}", r.matrix.render());
                    }
                    Err(e) => {
                        eprintln!("xcheck smoke FAILED:\n{e}");
                        std::process::exit(1);
                    }
                },
                "report" => {
                    let cfg = xcheck::XConfig { seed, ..Default::default() };
                    print!("{}", xcheck::render_report(&xcheck::run(&cfg)));
                }
                _ => usage(),
            }
        }
        Some("fix") => cmd_fix(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("corpus") => {
            for k in drb_gen::corpus() {
                println!(
                    "{:40} {} {:18} {}",
                    k.name,
                    if k.race { "yes" } else { "no " },
                    k.category.as_str(),
                    k.description
                );
            }
        }
        _ => usage(),
    }
}
