//! `racellm` — reproduction of *Data Race Detection Using Large
//! Language Models* (Chen et al., Correctness @ SC'23).
//!
//! This umbrella crate re-exports the whole workspace and offers a
//! high-level [`Pipeline`] that mirrors the paper's Figure 1: DRB-ML
//! dataset construction → prompt engineering → (surrogate) LLM
//! inference → output parsing → metrics, alongside the traditional
//! static and dynamic detectors used as the comparison baseline.
//!
//! ```
//! let pipeline = racellm::Pipeline::new();
//! let report = pipeline.analyze(r#"
//! int a[100];
//! int main(void) {
//!   int i;
//!   #pragma omp parallel for
//!   for (i = 0; i < 99; i++)
//!     a[i] = a[i + 1];
//!   return 0;
//! }
//! "#).unwrap();
//! assert!(report.static_verdict);
//! assert!(report.dynamic_verdict);
//! ```

#![warn(missing_docs)]

pub use depend;
pub use drb_gen;
pub use drb_ml;
pub use eval;
pub use finetune;
pub use hbsan;
pub use llm;
pub use minic;
pub use racecheck;
pub use repair;
pub use serve;
pub use xcheck;

use llm::{KernelView, ModelKind, PromptStrategy, Surrogate};
use serde::{Deserialize, Serialize};

/// Combined verdicts for one analyzed source snippet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Static detector verdict (racecheck).
    pub static_verdict: bool,
    /// Static race descriptions (`var@line:col:OP vs. …`).
    pub static_races: Vec<String>,
    /// Dynamic happens-before verdict (hbsan, 3 schedules).
    pub dynamic_verdict: bool,
    /// Dynamic race descriptions.
    pub dynamic_races: Vec<String>,
    /// Per-model LLM answers (free text) and parsed verdicts, p1 prompt.
    pub llm_answers: Vec<(String, String, Option<bool>)>,
    /// Token count of the trimmed code.
    pub tokens: usize,
}

/// The end-to-end pipeline of Figure 1.
pub struct Pipeline {
    views: Vec<KernelView>,
    surrogates: Vec<(ModelKind, Surrogate)>,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipeline {
    /// Build the pipeline: generate the corpus, derive DRB-ML, calibrate
    /// the four surrogates. Views and surrogates come from the shared
    /// process-wide caches (`eval::corpus_views` / `corpus_surrogates`),
    /// so building a second pipeline — or running the table runners
    /// alongside one — re-analyzes nothing.
    pub fn new() -> Pipeline {
        let views = eval::corpus_views().to_vec();
        let surrogates = eval::corpus_surrogates().to_vec();
        Pipeline { views, surrogates }
    }

    /// The evaluation subset the pipeline was calibrated on.
    pub fn views(&self) -> &[KernelView] {
        &self.views
    }

    /// Surrogate for a model.
    pub fn surrogate(&self, kind: ModelKind) -> &Surrogate {
        &self.surrogates.iter().find(|(k, _)| *k == kind).expect("all four present").1
    }

    /// Analyze an arbitrary snippet with every tool in the workspace.
    ///
    /// For code outside the calibrated corpus, the LLM verdicts come from
    /// the surrogate's feature-based suspicion score (what the decision
    /// layer degrades to without a calibration entry).
    pub fn analyze(&self, source: &str) -> minic::Result<AnalysisReport> {
        let trimmed = minic::trim_comments(source);
        // Parse once; every downstream consumer (static, dynamic, LLM
        // features, token count) shares this artifact.
        let unit = minic::parse(&trimmed.code)?;

        let st = racecheck::check(&unit);

        let artifact = llm::AnalyzedKernel::from_parsed(&trimmed.code, Some(unit));
        let ast = artifact.ast.as_ref().expect("parsed above");
        let dy = hbsan::check_adversarial_compiled(
            ast,
            artifact.oracle_program(),
            &hbsan::Config::default(),
            &[1, 7, 23],
        )
        .map(|s| s.report)
        .unwrap_or_default();
        let features = &artifact.features;
        let mut llm_answers = Vec::new();
        for (kind, _s) in &self.surrogates {
            let suspicious = llm::feature_verdict(features, *kind);
            let text = if suspicious {
                format!("Yes, {} suspects a data race in this code.", kind.name())
            } else {
                format!("No, {} does not see a data race here.", kind.name())
            };
            let verdict = match eval::parse_verdict(&text) {
                eval::Verdict::Yes => Some(true),
                eval::Verdict::No => Some(false),
                eval::Verdict::Unknown => None,
            };
            llm_answers.push((kind.short().to_string(), text, verdict));
        }

        Ok(AnalysisReport {
            static_verdict: st.has_race(),
            static_races: st.races.iter().map(racecheck::Race::describe).collect(),
            dynamic_verdict: dy.has_race(),
            dynamic_races: dy.races.iter().map(hbsan::DynRace::describe).collect(),
            llm_answers,
            tokens: artifact.tokens.len(),
        })
    }

    /// Run one calibrated detection experiment (model × prompt) over the
    /// evaluation subset.
    pub fn detection(&self, kind: ModelKind, strategy: PromptStrategy) -> eval::Confusion {
        eval::run_detection(self.surrogate(kind), strategy, &self.views).0
    }

    /// The traditional-tool baseline confusion over the subset.
    pub fn baseline(&self) -> eval::Confusion {
        eval::run_baseline(&self.views)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_analyzes_clean_code() {
        let p = Pipeline::new();
        let r = p
            .analyze(
                "int a[64]; int main(void) {\n#pragma omp parallel for\nfor (int i=0;i<64;i++) a[i]=i;\n return 0; }",
            )
            .unwrap();
        assert!(!r.static_verdict);
        assert!(!r.dynamic_verdict);
        assert_eq!(r.llm_answers.len(), 4);
    }

    #[test]
    fn pipeline_detection_matches_eval() {
        let p = Pipeline::new();
        let c = p.detection(ModelKind::Gpt4, PromptStrategy::P1);
        assert_eq!(c.total(), 198);
        assert!(p.baseline().f1() > c.f1());
    }
}
