//! Cache-equivalence guarantees for the once-per-kernel artifact layer.
//!
//! The calibrated operating points — and therefore every table — depend
//! on features being *identical* whether they come from a fresh
//! `CodeFeatures::extract` or from a view's cached `AnalyzedKernel`.
//! These tests pin that invariant over the full corpus (all 201
//! entries, including the 3 that the 4k filter drops) and over
//! arbitrary — including unparseable — inputs.

use drb_ml::Dataset;
use llm::{AnalyzedKernel, CodeFeatures, NGRAM_DIM};
use proptest::prelude::*;

#[test]
fn cached_artifacts_match_fresh_extraction_for_every_entry() {
    let ds = Dataset::generate();
    assert_eq!(ds.entries.len(), 201);
    for e in &ds.entries {
        let a = AnalyzedKernel::analyze(&e.trimmed_code);
        let fresh = CodeFeatures::extract(&e.trimmed_code);
        assert_eq!(a.features, fresh, "entry {}: cached features drifted", e.id);
        assert_eq!(a.feature_vec, fresh.to_vector(), "entry {}", e.id);
        assert_eq!(a.surface_difficulty, fresh.surface_difficulty(), "entry {}", e.id);
        assert_eq!(a.tokens.len(), llm::count_tokens(&e.trimmed_code), "entry {}", e.id);
        assert_eq!(a.ngram_vec, llm::ngram_vector(&e.trimmed_code), "entry {}", e.id);
        assert_eq!(a.full_vec.len(), NGRAM_DIM + CodeFeatures::DIM);
    }
}

#[test]
fn oversized_entries_still_get_equivalent_artifacts() {
    // The 3 filtered-out kernels never reach the evaluation subset, but
    // anything analyzing them directly must see the same degradation.
    let ds = Dataset::generate();
    let dropped: Vec<_> = ds.entries.iter().filter(|e| !e.fits_prompt_budget()).collect();
    assert_eq!(dropped.len(), 3);
    for e in dropped {
        let a = AnalyzedKernel::analyze(&e.trimmed_code);
        assert_eq!(a.features, CodeFeatures::extract(&e.trimmed_code), "entry {}", e.id);
    }
}

#[test]
fn subset_views_carry_equivalent_artifacts() {
    for v in Dataset::generate().subset_views() {
        let fresh = CodeFeatures::extract(&v.trimmed_code);
        assert_eq!(v.artifact().features, fresh, "view {}", v.id);
        // The difficulty baked into the view at build time used the same
        // surface term a fresh extraction produces.
        assert_eq!(v.artifact().surface_difficulty, fresh.surface_difficulty(), "view {}", v.id);
    }
}

#[test]
fn view_clones_share_one_artifact_cell() {
    let views = Dataset::generate().subset_views();
    let v = &views[0];
    let clone = v.clone();
    // Both handles must resolve to the same cached analysis.
    assert!(std::ptr::eq(v.artifact(), clone.artifact()));
}

proptest! {
    /// Arbitrary printable input — almost never valid C — must degrade
    /// identically through the cached and the fresh path, without
    /// panicking.
    #[test]
    fn analyze_degrades_like_extract_on_arbitrary_input(s in "[ -~\n]{0,120}") {
        let a = AnalyzedKernel::analyze(&s);
        prop_assert_eq!(&a.features, &CodeFeatures::extract(&s));
        prop_assert_eq!(a.tokens.len(), a.features.tokens);
        prop_assert_eq!(a.ast.is_none(), minic::parse(&s).is_err());
    }
}
