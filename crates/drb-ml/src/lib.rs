//! `drb-ml` — the DRB-ML dataset (paper §3.1).
//!
//! Derives a machine-learning-ready dataset from the `drb-gen` corpus:
//! one JSON entry per microbenchmark with the Table-1 keys, the 4k-token
//! evaluation subset (198 of 201 entries, 100 race-yes / 98 race-no),
//! the prompt templates of Listings 4–7, and the fine-tuning
//! prompt–response pairs of Listings 8–9.
//!
//! ```
//! use drb_ml::Dataset;
//! let ds = Dataset::generate();
//! assert_eq!(ds.entries.len(), 201);
//! assert_eq!(ds.subset_4k().len(), 198);
//! ```

#![warn(missing_docs)]

pub mod dataset;
pub mod entry;
pub mod prompts;
pub mod stats;

pub use dataset::Dataset;
pub use entry::{DrbMlEntry, VarPairJson};
pub use prompts::{detection_pair, render, varid_pair, PromptResponse};
pub use stats::{stats, DatasetStats};
