//! Dataset statistics: the summary numbers the paper quotes in §3.2 and
//! §3.5 (counts, class balance, token sizes), plus per-category
//! breakdowns for the corpus audit in `examples/dataset_export.rs`.

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Aggregate statistics over a dataset slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Entry count.
    pub entries: usize,
    /// Race-yes count.
    pub positives: usize,
    /// Race-no count.
    pub negatives: usize,
    /// Positive share.
    pub positive_share: f64,
    /// Token count: minimum.
    pub tokens_min: usize,
    /// Token count: median.
    pub tokens_median: usize,
    /// Token count: maximum.
    pub tokens_max: usize,
    /// `code_len` (string length) mean.
    pub code_len_mean: f64,
    /// Entries per pattern category.
    pub per_category: BTreeMap<String, usize>,
    /// Race-yes entries per category.
    pub per_category_positive: BTreeMap<String, usize>,
}

/// Compute statistics for the full dataset or the 4k subset.
pub fn stats(subset_only: bool) -> DatasetStats {
    let ds = Dataset::generate();
    let corpus = drb_gen::corpus();
    let entries: Vec<&crate::DrbMlEntry> = if subset_only {
        ds.subset_4k()
    } else {
        ds.entries.iter().collect()
    };

    let mut tokens: Vec<usize> = entries.iter().map(|e| e.token_count()).collect();
    tokens.sort_unstable();
    let positives = entries.iter().filter(|e| e.data_race == 1).count();
    let mut per_category = BTreeMap::new();
    let mut per_category_positive = BTreeMap::new();
    for e in &entries {
        let cat = corpus
            .iter()
            .find(|k| k.id == e.id)
            .map(|k| k.category.as_str().to_string())
            .unwrap_or_else(|| "unknown".into());
        *per_category.entry(cat.clone()).or_insert(0) += 1;
        if e.data_race == 1 {
            *per_category_positive.entry(cat).or_insert(0) += 1;
        }
    }
    DatasetStats {
        entries: entries.len(),
        positives,
        negatives: entries.len() - positives,
        positive_share: positives as f64 / entries.len().max(1) as f64,
        tokens_min: tokens.first().copied().unwrap_or(0),
        tokens_median: tokens.get(tokens.len() / 2).copied().unwrap_or(0),
        tokens_max: tokens.last().copied().unwrap_or(0),
        code_len_mean: entries.iter().map(|e| e.code_len as f64).sum::<f64>()
            / entries.len().max(1) as f64,
        per_category,
        per_category_positive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_stats_match_paper() {
        let s = stats(true);
        assert_eq!(s.entries, 198);
        assert_eq!(s.positives, 100);
        assert_eq!(s.negatives, 98);
        // §3.5: roughly 50.5% positive.
        assert!((s.positive_share - 0.505).abs() < 0.001);
        // Everything fits the 4k prompt budget.
        assert!(s.tokens_max < llm::PROMPT_TOKEN_LIMIT);
    }

    #[test]
    fn full_stats_include_oversized() {
        let s = stats(false);
        assert_eq!(s.entries, 201);
        assert!(s.tokens_max >= llm::PROMPT_TOKEN_LIMIT, "{}", s.tokens_max);
    }

    #[test]
    fn categories_cover_the_taxonomy() {
        let s = stats(false);
        assert!(s.per_category.len() >= 15, "{:?}", s.per_category.keys());
        let total: usize = s.per_category.values().sum();
        assert_eq!(total, 201);
        let pos_total: usize = s.per_category_positive.values().sum();
        assert_eq!(pos_total, 101);
    }

    #[test]
    fn medians_are_plausible() {
        let s = stats(true);
        assert!(s.tokens_min > 10);
        assert!(s.tokens_median > s.tokens_min);
        assert!(s.tokens_median < s.tokens_max);
        assert!(s.code_len_mean > 100.0);
    }
}
