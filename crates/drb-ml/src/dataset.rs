//! DRB-ML dataset assembly, filtering, and (de)serialization.
//!
//! §3.2: the experiments use the subset of entries whose trimmed code
//! fits the 4k-token prompt budget — 198 of 201, split 100 race-yes /
//! 98 race-no (§3.5 quotes 50.5% / 49.5%).

use crate::entry::DrbMlEntry;
use llm::KernelView;
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::OnceLock;

/// The whole DRB-ML dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// All entries, in id order.
    pub entries: Vec<DrbMlEntry>,
}

impl Dataset {
    /// Build the dataset from the generated corpus (cached).
    pub fn generate() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| Dataset {
            entries: drb_gen::corpus().iter().map(DrbMlEntry::from_kernel).collect(),
        })
    }

    /// Entries that fit the 4k prompt budget (the evaluation subset).
    pub fn subset_4k(&self) -> Vec<&DrbMlEntry> {
        self.entries.iter().filter(|e| e.fits_prompt_budget()).collect()
    }

    /// (positive, negative) counts of a slice of entries.
    pub fn label_counts<'a>(entries: impl IntoIterator<Item = &'a DrbMlEntry>) -> (usize, usize) {
        let mut yes = 0;
        let mut no = 0;
        for e in entries {
            if e.data_race == 1 {
                yes += 1;
            } else {
                no += 1;
            }
        }
        (yes, no)
    }

    /// Surrogate views for the evaluation subset, difficulty included.
    ///
    /// Each view carries its analysis artifact (AST, tokens, features),
    /// computed in parallel at build time. For the canonical
    /// [`Dataset::generate`] dataset the views are built once and cached:
    /// subsequent calls clone the views, and clones share the artifact
    /// cells, so every kernel is analyzed exactly once per process.
    pub fn subset_views(&self) -> Vec<KernelView> {
        static VIEWS: OnceLock<Vec<KernelView>> = OnceLock::new();
        if std::ptr::eq(self, Dataset::generate()) {
            return VIEWS.get_or_init(|| self.build_subset_views()).clone();
        }
        self.build_subset_views()
    }

    fn build_subset_views(&self) -> Vec<KernelView> {
        let kernels = drb_gen::corpus();
        let jobs: Vec<(&DrbMlEntry, f64)> = self
            .subset_4k()
            .into_iter()
            .map(|e| {
                let cat = kernels
                    .iter()
                    .find(|k| k.id == e.id)
                    .map(|k| k.category.difficulty())
                    .unwrap_or(0.5);
                (e, cat)
            })
            .collect();
        par_views(&jobs)
    }

    /// Write one JSON file per entry (`DRB-ML-xxx.json`), mirroring the
    /// paper's "201 JSON files" layout, plus an `index.json`.
    pub fn export_dir(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut names = Vec::new();
        for e in &self.entries {
            let file = format!("DRB-ML-{:03}.json", e.id);
            let path = dir.join(&file);
            std::fs::write(&path, serde_json::to_string_pretty(e)?)?;
            names.push(file);
        }
        std::fs::write(dir.join("index.json"), serde_json::to_string_pretty(&names)?)?;
        Ok(())
    }

    /// Read a dataset back from an exported directory.
    pub fn import_dir(dir: &Path) -> std::io::Result<Dataset> {
        let names: Vec<String> =
            serde_json::from_str(&std::fs::read_to_string(dir.join("index.json"))?)?;
        let mut entries = Vec::with_capacity(names.len());
        for n in names {
            let e: DrbMlEntry = serde_json::from_str(&std::fs::read_to_string(dir.join(n))?)?;
            entries.push(e);
        }
        entries.sort_by_key(|e| e.id);
        Ok(Dataset { entries })
    }
}

/// Analyze entries into views in parallel: scoped workers claim indices
/// off an atomic counter, collect `(index, view)` pairs locally, and the
/// results are scattered in order after the join. Honors the
/// `RACELLM_WORKERS` override used by the sweep layer.
fn par_views(jobs: &[(&DrbMlEntry, f64)]) -> Vec<KernelView> {
    let env_workers = std::env::var("RACELLM_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .map(|n| n.max(1));
    let workers = env_workers
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
        .min(16)
        .min(jobs.len().max(1));
    if workers <= 1 {
        return jobs.iter().map(|(e, cat)| e.to_view(*cat)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut collected: Vec<Vec<(usize, KernelView)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::with_capacity(jobs.len() / workers + 1);
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some((e, cat)) = jobs.get(i) else { break };
                        local.push((i, e.to_view(*cat)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("analysis worker panicked")).collect()
    });
    let mut out: Vec<Option<KernelView>> = Vec::with_capacity(jobs.len());
    out.resize_with(jobs.len(), || None);
    for buf in &mut collected {
        for (i, v) in buf.drain(..) {
            out[i] = Some(v);
        }
    }
    out.into_iter().map(|slot| slot.expect("every index filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_201_entries() {
        let ds = Dataset::generate();
        assert_eq!(ds.entries.len(), 201);
    }

    #[test]
    fn token_filter_keeps_198() {
        let ds = Dataset::generate();
        let subset = ds.subset_4k();
        assert_eq!(subset.len(), 198, "the 4k filter must drop exactly 3 entries");
        let (yes, no) = Dataset::label_counts(subset.iter().copied());
        assert_eq!((yes, no), (100, 98), "paper §3.5: 100 positive / 98 negative");
    }

    #[test]
    fn dropped_entries_are_the_oversized_trio() {
        let ds = Dataset::generate();
        let dropped: Vec<&DrbMlEntry> =
            ds.entries.iter().filter(|e| !e.fits_prompt_budget()).collect();
        assert_eq!(dropped.len(), 3);
        assert!(dropped.iter().all(|e| e.name.contains("oversized")), "{dropped:?}");
    }

    #[test]
    fn subset_positive_share_matches_paper() {
        // §3.5: roughly 50.5% positive / 49.5% negative.
        let ds = Dataset::generate();
        let subset = ds.subset_4k();
        let (yes, _) = Dataset::label_counts(subset.iter().copied());
        let share = yes as f64 / subset.len() as f64;
        assert!((share - 0.505).abs() < 0.001, "{share}");
    }

    #[test]
    fn export_import_round_trip() {
        let dir = std::env::temp_dir().join("drbml_test_export");
        let _ = std::fs::remove_dir_all(&dir);
        let ds = Dataset::generate();
        ds.export_dir(&dir).unwrap();
        assert!(dir.join("DRB-ML-001.json").exists());
        assert!(dir.join("DRB-ML-201.json").exists());
        let back = Dataset::import_dir(&dir).unwrap();
        assert_eq!(*ds, back);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn views_align_with_subset() {
        let ds = Dataset::generate();
        let views = ds.subset_views();
        assert_eq!(views.len(), 198);
        assert!(views.iter().all(|v| v.difficulty > 0.0 && v.difficulty < 1.0));
    }
}
