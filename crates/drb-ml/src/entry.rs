//! The DRB-ML entry schema (paper Table 1).
//!
//! One JSON object per microbenchmark, with keys exactly as the paper
//! lists them: `ID`, `name`, `DRB_code`, `trimmed_code`, `code_len`,
//! `data_race`, `data_race_label`, `var_pairs`, and per-pair `name`,
//! `line`, `col`, `operation` arrays (two entries each — one per side
//! of the pair; `operation` is `"w"` or `"r"`).

use drb_gen::{Kernel, Op};
use llm::{KernelView, PairView};
use serde::{Deserialize, Serialize};

/// One variable pair, serialized as in Listing 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VarPairJson {
    /// Variable names (`["a[i]", "a[i+1]"]`).
    pub name: Vec<String>,
    /// 1-based line numbers in the trimmed code.
    pub line: Vec<u32>,
    /// 1-based column numbers in the trimmed code.
    pub col: Vec<u32>,
    /// Operations: `"w"` or `"r"` per side.
    pub operation: Vec<String>,
}

/// One DRB-ML dataset entry (paper Table 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrbMlEntry {
    /// A unique index number starting from 1.
    #[serde(rename = "ID")]
    pub id: u32,
    /// The original filename of the benchmark.
    pub name: String,
    /// The original code, header comment included.
    #[serde(rename = "DRB_code")]
    pub drb_code: String,
    /// The code with all comments removed.
    pub trimmed_code: String,
    /// String length of the trimmed code.
    pub code_len: usize,
    /// 1 when a data race is present, 0 otherwise.
    pub data_race: u8,
    /// The race-label bucket DRB marks (`Y…`/`N…`).
    pub data_race_label: String,
    /// Pairs of variables associated with a data race (empty when
    /// `data_race` is 0).
    pub var_pairs: Vec<VarPairJson>,
}

impl DrbMlEntry {
    /// Build an entry from a corpus kernel (step 1 of §3.1).
    pub fn from_kernel(k: &Kernel) -> DrbMlEntry {
        let var_pairs = k
            .pairs
            .iter()
            .map(|p| VarPairJson {
                name: vec![p.names.0.clone(), p.names.1.clone()],
                line: vec![p.lines.0, p.lines.1],
                col: vec![p.cols.0, p.cols.1],
                operation: vec![p.ops.0.letter().to_string(), p.ops.1.letter().to_string()],
            })
            .collect();
        DrbMlEntry {
            id: k.id,
            name: k.name.clone(),
            drb_code: k.code.clone(),
            trimmed_code: k.trimmed_code.clone(),
            code_len: k.trimmed_code.len(),
            data_race: u8::from(k.race),
            data_race_label: k.race_label(),
            var_pairs,
        }
    }

    /// Token count of the trimmed code (for the 4k filter).
    pub fn token_count(&self) -> usize {
        llm::count_tokens(&self.trimmed_code)
    }

    /// Whether this entry survives the paper's 4k-token filter.
    pub fn fits_prompt_budget(&self) -> bool {
        llm::fits_prompt_budget(&self.trimmed_code)
    }

    /// Bridge to the surrogate's view, with the combined difficulty
    /// (category + surface features). The analysis artifact (AST,
    /// tokens, features) is computed here — once — and travels with the
    /// view, so no downstream stage re-derives it.
    pub fn to_view(&self, category_difficulty: f64) -> KernelView {
        let artifact = llm::AnalyzedKernel::analyze(&self.trimmed_code);
        let difficulty = 0.6 * category_difficulty + 0.4 * artifact.surface_difficulty;
        let pairs = self
            .var_pairs
            .iter()
            .map(|p| PairView {
                names: (p.name[0].clone(), p.name[1].clone()),
                lines: (p.line[0], p.line[1]),
                ops: (
                    op_word(&p.operation[0]).to_string(),
                    op_word(&p.operation[1]).to_string(),
                ),
            })
            .collect();
        KernelView::with_artifact(
            self.id,
            self.trimmed_code.clone(),
            self.data_race == 1,
            pairs,
            difficulty,
            artifact,
        )
    }
}

fn op_word(letter: &str) -> &'static str {
    if letter.eq_ignore_ascii_case("w") {
        "write"
    } else {
        "read"
    }
}

/// Op re-export helper for tests.
pub fn op_letter(op: Op) -> &'static str {
    op.letter()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_from_first_kernel() {
        let k = &drb_gen::corpus()[0];
        let e = DrbMlEntry::from_kernel(k);
        assert_eq!(e.id, 1);
        assert_eq!(e.code_len, k.trimmed_code.len());
        assert_eq!(e.data_race == 1, k.race);
        if k.race {
            assert!(!e.var_pairs.is_empty());
            let p = &e.var_pairs[0];
            assert_eq!(p.name.len(), 2);
            assert_eq!(p.line.len(), 2);
            assert_eq!(p.col.len(), 2);
            assert!(p.operation.iter().all(|o| o == "r" || o == "w"));
        }
    }

    #[test]
    fn json_round_trip() {
        let k = &drb_gen::corpus()[0];
        let e = DrbMlEntry::from_kernel(k);
        let json = serde_json::to_string_pretty(&e).unwrap();
        assert!(json.contains("\"ID\""));
        assert!(json.contains("\"DRB_code\""));
        let back: DrbMlEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn view_bridges_pairs() {
        let k = drb_gen::corpus().iter().find(|k| k.race).unwrap();
        let e = DrbMlEntry::from_kernel(k);
        let v = e.to_view(k.category.difficulty());
        assert!(v.race);
        assert_eq!(v.pairs.len(), e.var_pairs.len());
        assert!(v.pairs[0].ops.0 == "write" || v.pairs[0].ops.0 == "read");
        assert!(v.difficulty >= 0.0 && v.difficulty <= 1.0);
    }
}
