//! Prompt templates (paper Listings 3–9).
//!
//! Five strategies drive the experiments: BP1/BP2 (Table 2), p1/p2/p3
//! (Table 3), plus the fine-tuning prompt–response pairs (Listings 8
//! and 9). Template texts follow the listings.

use crate::entry::DrbMlEntry;
use llm::PromptStrategy;
use serde::{Deserialize, Serialize};

/// Basic prompt template 1 (Listing 4): succinct yes/no.
pub const BP1_TEMPLATE: &str = "\
You are an expert in High-Performance Computing. Examine the code presented to you and ascertain if it contains any data races.
Begin with a concise response: either 'yes' for the presence of a data race or 'no' if absent.

{Code_to_analyze}";

/// Basic prompt template 2 (Listing 5): yes/no plus JSON variable pairs.
pub const BP2_TEMPLATE: &str = "\
You are an expert in High-Performance Computing. Examine the code presented to you and ascertain if it contains any data races.
Begin with a concise response: either 'yes' for the presence of a data race or 'no' if absent.
Detail each occurrence of a data race by specifying the variable pairs involved, using the JSON format outlined below:
\"variable_names\": Names of each pair of variables involved in a data race.
\"variable_locations\": line numbers of the paired variables within the code.
\"operation_types\": Corresponding operations, either 'write' or 'read'.

{Code_to_analyze}";

/// Prompt p2 (Listing 6): tool-emulating, dependence-analysis first.
pub const P2_TEMPLATE: &str = "\
You are an expert in High-Performance Computing (HPC). Examine the provided code to identify any data races based on data dependence analysis.
For clarity, a data race occurs when two or more threads access the same memory location simultaneously in a conflicting manner, without sufficient synchronization, with at least one of these accesses involving a write operation. It's crucial to analyze data dependence before determining potential data races.
Begin with a concise response: either 'yes' for the presence of a data race or 'no' if absent.

{Code_to_analyze}";

/// Prompt p3, first turn (Listing 7): request dependence analysis.
pub const P3_TURN1_TEMPLATE: &str = "\
You are an expert in High-Performance Computing (HPC). Analyze data dependence in the given code.

{Code_to_analyze}";

/// Prompt p3, second turn (Listing 7): decide from the analysis.
pub const P3_TURN2_TEMPLATE: &str = "\
A data race occurs when two or more threads access the same memory location simultaneously in a conflicting manner, without sufficient synchronization, with at least one of these accesses involving a write operation. Identify any data races based on the given data dependence information.
Begin with a concise response: either 'yes' for the presence of a data race or 'no' if absent.";

/// Render a strategy's prompt turns for a code snippet.
pub fn render(strategy: PromptStrategy, code: &str) -> Vec<String> {
    let fill = |t: &str| t.replace("{Code_to_analyze}", code);
    match strategy {
        PromptStrategy::Bp1 | PromptStrategy::P1 => vec![fill(BP1_TEMPLATE)],
        PromptStrategy::Bp2 => vec![fill(BP2_TEMPLATE)],
        PromptStrategy::P2 => vec![fill(P2_TEMPLATE)],
        PromptStrategy::P3 => vec![fill(P3_TURN1_TEMPLATE), P3_TURN2_TEMPLATE.to_string()],
    }
}

/// A fine-tuning prompt–response pair (Listings 8 and 9).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptResponse {
    /// The instruction + code.
    pub prompt: String,
    /// The target completion.
    pub response: String,
}

/// Listing-8 pair: detection fine-tuning (`yes`/`no` targets).
pub fn detection_pair(e: &DrbMlEntry) -> PromptResponse {
    PromptResponse {
        prompt: render(PromptStrategy::P1, &e.trimmed_code).remove(0),
        response: if e.data_race == 1 { "yes".to_string() } else { "no".to_string() },
    }
}

/// Listing-9 pair: variable-identification fine-tuning (JSON targets).
pub fn varid_pair(e: &DrbMlEntry) -> PromptResponse {
    let prompt = render(PromptStrategy::Bp2, &e.trimmed_code).remove(0);
    let response = if e.data_race == 1 {
        let p = &e.var_pairs[0];
        format!(
            "yes\n{{\n  \"data_race\": 1,\n  \"variable_names\": [\"{}\", \"{}\"],\n  \"variable_locations\": [{}, {}],\n  \"operation_types\": [\"{}\", \"{}\"]\n}}",
            p.name[0],
            p.name[1],
            p.line[0],
            p.line[1],
            op_word(&p.operation[0]),
            op_word(&p.operation[1]),
        )
    } else {
        "no\n{\n  \"data_race\": 0\n}".to_string()
    };
    PromptResponse { prompt, response }
}

fn op_word(letter: &str) -> &'static str {
    if letter.eq_ignore_ascii_case("w") {
        "write"
    } else {
        "read"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::DrbMlEntry;

    #[test]
    fn p1_renders_single_turn_with_code() {
        let turns = render(PromptStrategy::P1, "int main() { return 0; }");
        assert_eq!(turns.len(), 1);
        assert!(turns[0].contains("int main()"));
        assert!(turns[0].contains("concise response"));
    }

    #[test]
    fn p3_renders_two_turns() {
        let turns = render(PromptStrategy::P3, "code");
        assert_eq!(turns.len(), 2);
        assert!(turns[0].contains("Analyze data dependence"));
        assert!(!turns[1].contains("{Code_to_analyze}"));
    }

    #[test]
    fn bp2_mentions_json_keys() {
        let turns = render(PromptStrategy::Bp2, "code");
        assert!(turns[0].contains("variable_names"));
        assert!(turns[0].contains("operation_types"));
    }

    #[test]
    fn detection_pairs_have_yes_no_targets() {
        for k in drb_gen::corpus().iter().take(10) {
            let e = DrbMlEntry::from_kernel(k);
            let pr = detection_pair(&e);
            assert_eq!(pr.response == "yes", k.race);
            assert!(pr.prompt.contains(&e.trimmed_code[..20.min(e.trimmed_code.len())]));
        }
    }

    #[test]
    fn varid_pairs_embed_ground_truth() {
        let k = drb_gen::corpus().iter().find(|k| k.race).unwrap();
        let e = DrbMlEntry::from_kernel(k);
        let pr = varid_pair(&e);
        assert!(pr.response.starts_with("yes"));
        assert!(pr.response.contains("variable_locations"));
        assert!(pr.response.contains(&e.var_pairs[0].name[0]));
    }
}
