//! Training loop, configuration, and deterministic RNG.

use crate::model::{fit_base_head, LoraHead, TrainScratch};
use llm::{KernelView, PromptStrategy, Surrogate};
use serde::{Deserialize, Serialize};

// The SplitMix64 generator used for shuffles/dropout; once a private
// duplicate here, now the single shared implementation in `par`
// (identical stream — seeded runs reproduce historical results).
pub use par::rng::Rng;

/// Fine-tuning hyperparameters (paper §3.4: lr 2e-4 for Llama2,
/// 9.65e-6 for StarChat, LoRA dim 64, dropout 0.1, batch 4 — our
/// feature-space trainer rescales the learning rates but keeps the
/// structure: frozen quantized base + low-rank adapter + dropout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adapter learning rate.
    pub lr: f64,
    /// Training epochs over the fold's training split.
    pub epochs: usize,
    /// LoRA rank.
    pub rank: usize,
    /// LoRA α scale.
    pub alpha: f64,
    /// Input dropout probability.
    pub dropout: f64,
    /// RNG seed.
    pub seed: u64,
    /// How strongly the fine-tuned head is trusted over the base model
    /// at inference (0 = pure base, 1 = pure adapter head). Small
    /// values model the reality that 158 examples barely move a
    /// billion-parameter model.
    pub trust: f64,
}

impl TrainConfig {
    /// Defaults for a model kind (mirrors the paper's per-model lrs).
    pub fn for_model(kind: llm::ModelKind) -> TrainConfig {
        match kind {
            llm::ModelKind::Llama2_7b => TrainConfig {
                lr: 0.008,
                epochs: 10,
                rank: 8,
                alpha: 16.0,
                dropout: 0.1,
                seed: 2024,
                trust: 0.12,
            },
            _ => TrainConfig {
                lr: 0.004,
                epochs: 5,
                rank: 8,
                alpha: 16.0,
                dropout: 0.1,
                seed: 4242,
                trust: 0.18,
            },
        }
    }
}

/// A fine-tuned detector: frozen base head mimicking the surrogate plus
/// a trained adapter, blended by `trust`.
#[derive(Debug, Clone)]
pub struct FineTuned {
    head: LoraHead,
    trust: f64,
    base: Vec<(u32, bool)>, // (kernel id, base prediction)
}

impl FineTuned {
    /// Train on `train` (prompt–response pairs come from the dataset
    /// layer; here we consume the views + labels directly, which is the
    /// same information Listing 8 encodes).
    pub fn train(
        surrogate: &Surrogate,
        train: &[KernelView],
        cfg: &TrainConfig,
    ) -> FineTuned {
        let refs: Vec<&KernelView> = train.iter().collect();
        FineTuned::train_core(surrogate, &refs, cfg)
    }

    /// Train on a subset of `views` selected by `indices` (the CV
    /// runners' per-fold training split) without materializing a cloned
    /// `Vec<KernelView>` per fold.
    pub fn train_on(
        surrogate: &Surrogate,
        views: &[KernelView],
        indices: &[usize],
        cfg: &TrainConfig,
    ) -> FineTuned {
        let refs: Vec<&KernelView> = indices.iter().map(|&i| &views[i]).collect();
        FineTuned::train_core(surrogate, &refs, cfg)
    }

    /// The fast training loop. Relative to [`FineTuned::train_reference`]
    /// it (1) borrows feature vectors straight from the shared analysis
    /// artifacts instead of copying each row, (2) asks the surrogate
    /// once per kernel through the [`Surrogate::predict_memo`] cache
    /// (the reference path predicted twice and re-ran inference each
    /// time), (3) reuses one flat [`TrainScratch`] for every step's
    /// dropout mask / activations / gradients, and (4) drives a single
    /// fused Adam over the contiguous adapter buffer via `step_fast`.
    /// The RNG stream (shuffles + dropout draws) is consumed in exactly
    /// the reference order, so seeded runs stay comparable; gradients
    /// are bit-identical, the Adam arithmetic agrees to rounding.
    fn train_core(surrogate: &Surrogate, train: &[&KernelView], cfg: &TrainConfig) -> FineTuned {
        // 1. Build the frozen base head: fit to the surrogate's own
        //    answers (not the ground truth) — this is the "pre-trained
        //    model" the adapter perturbs.
        let xs: Vec<&[f64]> = train.iter().map(|k| crate::ngram::feature_vector_of(k)).collect();
        let mut base: Vec<(u32, bool)> =
            train.iter().map(|k| (k.id, surrogate.predict_memo(k, PromptStrategy::P1))).collect();
        let base_ys: Vec<f64> = base.iter().map(|&(_, p)| f64::from(p)).collect();
        // An empty training split degrades to the zero head at the full
        // feature width (an uninformed 0.5 prior) instead of a 0-dim
        // head that would fail the dimension check at inference time.
        let (w0, b0) = if xs.is_empty() {
            (vec![0.0; crate::ngram::FEATURE_DIM], 0.0)
        } else {
            fit_base_head(&xs, &base_ys, 12, 0.1, 1e-3)
        };

        // 2. LoRA fine-tuning on the ground-truth labels (Adam, as in
        //    the paper's §3.4).
        let mut head = LoraHead::new(w0, b0, cfg.rank, cfg.alpha, cfg.seed);
        let mut rng = Rng::new(cfg.seed ^ 0xF17E);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let adam_cfg = crate::adam::AdamConfig { lr: cfg.lr, ..Default::default() };
        let mut opt = crate::adam::Adam::new(head.adapter_params(), adam_cfg);
        let mut scratch = TrainScratch::new(cfg.rank, head.dim());
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                scratch.fill_mask(&mut rng, cfg.dropout);
                let y = f64::from(train[i].race);
                head.adam_step_scratch(xs[i], y, &mut opt, &mut scratch);
            }
        }

        // Sorted by id so `prob` can binary-search training-set answers.
        base.sort_unstable_by_key(|&(id, _)| id);
        FineTuned { head, trust: cfg.trust, base }
    }

    /// The pre-PR trainer, kept verbatim (modulo the split-buffer
    /// accessors) for differential tests and the benchmark baseline:
    /// per-row feature copies, two uncached surrogate predictions per
    /// kernel, a fresh dropout `Vec` per step, and two separate Adam
    /// optimizers.
    pub fn train_reference(
        surrogate: &Surrogate,
        train: &[KernelView],
        cfg: &TrainConfig,
    ) -> FineTuned {
        let xs: Vec<Vec<f64>> =
            train.iter().map(|k| crate::ngram::feature_vector_of(k).to_vec()).collect();
        let base_ys: Vec<f64> = train
            .iter()
            .map(|k| f64::from(surrogate.predict(k, PromptStrategy::P1)))
            .collect();
        let (w0, b0) = fit_base_head(&xs, &base_ys, 12, 0.1, 1e-3);

        let mut head = LoraHead::new(w0, b0, cfg.rank, cfg.alpha, cfg.seed);
        let mut rng = Rng::new(cfg.seed ^ 0xF17E);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let dim = head.dim();
        let adam_cfg = crate::adam::AdamConfig { lr: cfg.lr, ..Default::default() };
        let mut opt_a = crate::adam::Adam::new(cfg.rank * dim, adam_cfg);
        let mut opt_b = crate::adam::Adam::new(cfg.rank, adam_cfg);
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let mask: Vec<bool> =
                    (0..dim).map(|_| rng.uniform() >= cfg.dropout).collect();
                let y = f64::from(train[i].race);
                head.adam_step(&xs[i], y, &mut opt_a, &mut opt_b, &mask);
            }
        }

        let mut base: Vec<(u32, bool)> =
            train.iter().map(|k| (k.id, surrogate.predict(k, PromptStrategy::P1))).collect();
        base.sort_unstable_by_key(|&(id, _)| id);
        FineTuned { head, trust: cfg.trust, base }
    }

    /// Fine-tuned probability that a kernel is racy, blending the base
    /// model's (calibrated) answer with the adapter head.
    ///
    /// Training-set kernels read the base prediction recorded at
    /// training time (`base` is sorted by id); unseen kernels fall back
    /// to the memoized surrogate path. Either way the surrogate is not
    /// re-run for a kernel it has already answered.
    pub fn prob(&self, surrogate: &Surrogate, k: &KernelView) -> f64 {
        let adapter = self.head.prob(crate::ngram::feature_vector_of(k));
        let base_pred = match self.base.binary_search_by_key(&k.id, |&(id, _)| id) {
            Ok(i) => self.base[i].1,
            Err(_) => surrogate.predict_memo(k, PromptStrategy::P1),
        };
        let base = if base_pred { 0.58 } else { 0.42 };
        (1.0 - self.trust) * base + self.trust * adapter
    }

    /// Fine-tuned yes/no prediction.
    pub fn predict(&self, surrogate: &Surrogate, k: &KernelView) -> bool {
        self.prob(surrogate, k) > 0.5
    }

    /// Number of training examples seen.
    pub fn train_size(&self) -> usize {
        self.base.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::ModelKind;

    fn views(n: u32) -> Vec<KernelView> {
        (1..=n)
            .map(|id| {
                let racy = id % 2 == 0;
                let code = if racy {
                    format!(
                        "int a[100];\nint main(void)\n{{\n  int i;\n  #pragma omp parallel for\n  for (i = 0; i < 99 - {}; i++)\n    a[i] = a[i + 1];\n  return 0;\n}}\n",
                        id % 5
                    )
                } else {
                    format!(
                        "int a[100];\nint main(void)\n{{\n  int i;\n  #pragma omp parallel for\n  for (i = {}; i < 100; i++)\n    a[i] = a[i] * 2;\n  return 0;\n}}\n",
                        id % 5
                    )
                };
                KernelView::new(id, code, racy, vec![], (id % 9) as f64 / 9.0)
            })
            .collect()
    }

    #[test]
    fn training_is_deterministic() {
        let ks = views(40);
        let s = Surrogate::new(ModelKind::StarChatBeta, &ks);
        let cfg = TrainConfig::for_model(ModelKind::StarChatBeta);
        let ft1 = FineTuned::train(&s, &ks, &cfg);
        let ft2 = FineTuned::train(&s, &ks, &cfg);
        for k in &ks {
            assert!((ft1.prob(&s, k) - ft2.prob(&s, k)).abs() < 1e-12);
        }
    }

    #[test]
    fn finetuning_beats_base_on_separable_data() {
        let ks = views(60);
        let s = Surrogate::new(ModelKind::StarChatBeta, &ks);
        let mut cfg = TrainConfig::for_model(ModelKind::StarChatBeta);
        cfg.trust = 1.0; // pure adapter for this sanity check
        cfg.epochs = 30;
        let ft = FineTuned::train(&s, &ks, &cfg);
        let correct = ks.iter().filter(|k| ft.predict(&s, k) == k.race).count();
        let base_correct = ks
            .iter()
            .filter(|k| s.predict(k, PromptStrategy::P1) == k.race)
            .count();
        assert!(correct > base_correct, "{correct} vs {base_correct}");
    }

    #[test]
    fn fast_trainer_matches_reference() {
        // Same RNG stream, bit-identical gradients, Adam within
        // rounding: the fast path must reproduce the reference
        // trainer's probabilities to float noise and its predictions
        // exactly.
        let ks = views(40);
        for kind in [ModelKind::StarChatBeta, ModelKind::Llama2_7b] {
            let s = Surrogate::new(kind, &ks);
            let cfg = TrainConfig::for_model(kind);
            let fast = FineTuned::train(&s, &ks, &cfg);
            let slow = FineTuned::train_reference(&s, &ks, &cfg);
            for k in &ks {
                assert!((fast.prob(&s, k) - slow.prob(&s, k)).abs() < 1e-6, "{kind:?}/{}", k.id);
                assert_eq!(fast.predict(&s, k), slow.predict(&s, k), "{kind:?}/{}", k.id);
            }
        }
    }

    #[test]
    fn train_on_indices_equals_training_on_cloned_subset() {
        let ks = views(30);
        let s = Surrogate::new(ModelKind::Llama2_7b, &ks);
        let cfg = TrainConfig::for_model(ModelKind::Llama2_7b);
        let idx: Vec<usize> = (0..30).filter(|i| i % 3 != 0).collect();
        let subset: Vec<KernelView> = idx.iter().map(|&i| ks[i].clone()).collect();
        let a = FineTuned::train_on(&s, &ks, &idx, &cfg);
        let b = FineTuned::train(&s, &subset, &cfg);
        for k in &ks {
            assert_eq!(a.prob(&s, k), b.prob(&s, k), "{}", k.id);
        }
    }

    #[test]
    fn prob_uses_recorded_base_and_falls_back_for_unseen() {
        let ks = views(20);
        let s = Surrogate::new(ModelKind::StarChatBeta, &ks);
        let cfg = TrainConfig::for_model(ModelKind::StarChatBeta);
        let ft = FineTuned::train(&s, &ks[..10], &cfg);
        // Training-set kernels answer from the sorted base table…
        for k in &ks[..10] {
            let i = ft.base.binary_search_by_key(&k.id, |&(id, _)| id).expect("recorded");
            assert_eq!(ft.base[i].1, s.predict(k, PromptStrategy::P1));
        }
        // …and unseen kernels blend the (memoized) live prediction.
        for k in &ks[10..] {
            assert!(ft.base.binary_search_by_key(&k.id, |&(id, _)| id).is_err());
            let adapter = ft.head.prob(crate::ngram::feature_vector_of(k));
            let base = if s.predict(k, PromptStrategy::P1) { 0.58 } else { 0.42 };
            let want = (1.0 - ft.trust) * base + ft.trust * adapter;
            assert_eq!(ft.prob(&s, k), want);
        }
    }

    #[test]
    fn low_trust_stays_near_base() {
        let ks = views(30);
        let s = Surrogate::new(ModelKind::Llama2_7b, &ks);
        let mut cfg = TrainConfig::for_model(ModelKind::Llama2_7b);
        cfg.trust = 0.0;
        let ft = FineTuned::train(&s, &ks, &cfg);
        for k in &ks {
            assert_eq!(ft.predict(&s, k), s.predict(k, PromptStrategy::P1));
        }
    }
}
