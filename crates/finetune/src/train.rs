//! Training loop, configuration, and deterministic RNG.

use crate::model::{fit_base_head, LoraHead};
use llm::{KernelView, PromptStrategy, Surrogate};
use serde::{Deserialize, Serialize};

// The SplitMix64 generator used for shuffles/dropout; once a private
// duplicate here, now the single shared implementation in `par`
// (identical stream — seeded runs reproduce historical results).
pub use par::rng::Rng;

/// Fine-tuning hyperparameters (paper §3.4: lr 2e-4 for Llama2,
/// 9.65e-6 for StarChat, LoRA dim 64, dropout 0.1, batch 4 — our
/// feature-space trainer rescales the learning rates but keeps the
/// structure: frozen quantized base + low-rank adapter + dropout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Adapter learning rate.
    pub lr: f64,
    /// Training epochs over the fold's training split.
    pub epochs: usize,
    /// LoRA rank.
    pub rank: usize,
    /// LoRA α scale.
    pub alpha: f64,
    /// Input dropout probability.
    pub dropout: f64,
    /// RNG seed.
    pub seed: u64,
    /// How strongly the fine-tuned head is trusted over the base model
    /// at inference (0 = pure base, 1 = pure adapter head). Small
    /// values model the reality that 158 examples barely move a
    /// billion-parameter model.
    pub trust: f64,
}

impl TrainConfig {
    /// Defaults for a model kind (mirrors the paper's per-model lrs).
    pub fn for_model(kind: llm::ModelKind) -> TrainConfig {
        match kind {
            llm::ModelKind::Llama2_7b => TrainConfig {
                lr: 0.008,
                epochs: 10,
                rank: 8,
                alpha: 16.0,
                dropout: 0.1,
                seed: 2024,
                trust: 0.12,
            },
            _ => TrainConfig {
                lr: 0.004,
                epochs: 5,
                rank: 8,
                alpha: 16.0,
                dropout: 0.1,
                seed: 4242,
                trust: 0.18,
            },
        }
    }
}

/// A fine-tuned detector: frozen base head mimicking the surrogate plus
/// a trained adapter, blended by `trust`.
#[derive(Debug, Clone)]
pub struct FineTuned {
    head: LoraHead,
    trust: f64,
    base: Vec<(u32, bool)>, // (kernel id, base prediction)
}

impl FineTuned {
    /// Train on `train` (prompt–response pairs come from the dataset
    /// layer; here we consume the views + labels directly, which is the
    /// same information Listing 8 encodes).
    pub fn train(
        surrogate: &Surrogate,
        train: &[KernelView],
        cfg: &TrainConfig,
    ) -> FineTuned {
        // 1. Build the frozen base head: fit to the surrogate's own
        //    answers (not the ground truth) — this is the "pre-trained
        //    model" the adapter perturbs.
        // Feature vectors come from each view's shared analysis artifact
        // (computed once per kernel, not once per fold × epoch).
        let xs: Vec<Vec<f64>> =
            train.iter().map(|k| crate::ngram::feature_vector_of(k).to_vec()).collect();
        let base_ys: Vec<f64> = train
            .iter()
            .map(|k| f64::from(surrogate.predict(k, PromptStrategy::P1)))
            .collect();
        let (w0, b0) = fit_base_head(&xs, &base_ys, 12, 0.1, 1e-3);

        // 2. LoRA fine-tuning on the ground-truth labels (Adam, as in
        //    the paper's §3.4).
        let mut head = LoraHead::new(w0, b0, cfg.rank, cfg.alpha, cfg.seed);
        let mut rng = Rng::new(cfg.seed ^ 0xF17E);
        let mut order: Vec<usize> = (0..train.len()).collect();
        let dim = head.dim();
        let adam_cfg = crate::adam::AdamConfig { lr: cfg.lr, ..Default::default() };
        let mut opt_a = crate::adam::Adam::new(cfg.rank * dim, adam_cfg);
        let mut opt_b = crate::adam::Adam::new(cfg.rank, adam_cfg);
        for _ in 0..cfg.epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                let mask: Vec<bool> =
                    (0..dim).map(|_| rng.uniform() >= cfg.dropout).collect();
                let y = f64::from(train[i].race);
                head.adam_step(&xs[i], y, &mut opt_a, &mut opt_b, &mask);
            }
        }

        FineTuned {
            head,
            trust: cfg.trust,
            base: train.iter().map(|k| (k.id, surrogate.predict(k, PromptStrategy::P1))).collect(),
        }
    }

    /// Fine-tuned probability that a kernel is racy, blending the base
    /// model's (calibrated) answer with the adapter head.
    pub fn prob(&self, surrogate: &Surrogate, k: &KernelView) -> f64 {
        let adapter = self.head.prob(crate::ngram::feature_vector_of(k));
        let base = if surrogate.predict(k, PromptStrategy::P1) { 0.58 } else { 0.42 };
        (1.0 - self.trust) * base + self.trust * adapter
    }

    /// Fine-tuned yes/no prediction.
    pub fn predict(&self, surrogate: &Surrogate, k: &KernelView) -> bool {
        self.prob(surrogate, k) > 0.5
    }

    /// Number of training examples seen.
    pub fn train_size(&self) -> usize {
        self.base.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llm::ModelKind;

    fn views(n: u32) -> Vec<KernelView> {
        (1..=n)
            .map(|id| {
                let racy = id % 2 == 0;
                let code = if racy {
                    format!(
                        "int a[100];\nint main(void)\n{{\n  int i;\n  #pragma omp parallel for\n  for (i = 0; i < 99 - {}; i++)\n    a[i] = a[i + 1];\n  return 0;\n}}\n",
                        id % 5
                    )
                } else {
                    format!(
                        "int a[100];\nint main(void)\n{{\n  int i;\n  #pragma omp parallel for\n  for (i = {}; i < 100; i++)\n    a[i] = a[i] * 2;\n  return 0;\n}}\n",
                        id % 5
                    )
                };
                KernelView::new(id, code, racy, vec![], (id % 9) as f64 / 9.0)
            })
            .collect()
    }

    #[test]
    fn training_is_deterministic() {
        let ks = views(40);
        let s = Surrogate::new(ModelKind::StarChatBeta, &ks);
        let cfg = TrainConfig::for_model(ModelKind::StarChatBeta);
        let ft1 = FineTuned::train(&s, &ks, &cfg);
        let ft2 = FineTuned::train(&s, &ks, &cfg);
        for k in &ks {
            assert!((ft1.prob(&s, k) - ft2.prob(&s, k)).abs() < 1e-12);
        }
    }

    #[test]
    fn finetuning_beats_base_on_separable_data() {
        let ks = views(60);
        let s = Surrogate::new(ModelKind::StarChatBeta, &ks);
        let mut cfg = TrainConfig::for_model(ModelKind::StarChatBeta);
        cfg.trust = 1.0; // pure adapter for this sanity check
        cfg.epochs = 30;
        let ft = FineTuned::train(&s, &ks, &cfg);
        let correct = ks.iter().filter(|k| ft.predict(&s, k) == k.race).count();
        let base_correct = ks
            .iter()
            .filter(|k| s.predict(k, PromptStrategy::P1) == k.race)
            .count();
        assert!(correct > base_correct, "{correct} vs {base_correct}");
    }

    #[test]
    fn low_trust_stays_near_base() {
        let ks = views(30);
        let s = Surrogate::new(ModelKind::Llama2_7b, &ks);
        let mut cfg = TrainConfig::for_model(ModelKind::Llama2_7b);
        cfg.trust = 0.0;
        let ft = FineTuned::train(&s, &ks, &cfg);
        for k in &ks {
            assert_eq!(ft.predict(&s, k), s.predict(k, PromptStrategy::P1));
        }
    }
}
