//! The Adam optimizer (Kingma & Ba), used by the paper's fine-tuning
//! recipe (§3.4: "used the Adam optimizer").
//!
//! First/second-moment estimates with bias correction; one parameter
//! group per adapter matrix.

use serde::{Deserialize, Serialize};

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Step size.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8 }
    }
}

/// Adam state for one flat parameter vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Fresh optimizer state for `dim` parameters.
    pub fn new(dim: usize, cfg: AdamConfig) -> Adam {
        Adam { cfg, m: vec![0.0; dim], v: vec![0.0; dim], t: 0 }
    }

    /// Number of steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Apply one update: `params -= lr * m̂ / (√v̂ + ε)`.
    ///
    /// `grads` must have the same length as `params`.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter count fixed at construction");
        assert_eq!(params.len(), grads.len());
        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.cfg.beta1 * self.m[i] + (1.0 - self.cfg.beta1) * grads[i];
            self.v[i] = self.cfg.beta2 * self.v[i] + (1.0 - self.cfg.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
        }
    }

    /// [`Adam::step`] rewritten per Kingma & Ba §2's "efficiency"
    /// rearrangement: the bias corrections are folded into a per-step
    /// `step_size = lr·√(1−β₂ᵗ)/(1−β₁ᵗ)` and `ε̂ = ε·√(1−β₂ᵗ)`, so the
    /// per-coordinate work drops from three divisions and a square root
    /// to one of each. Algebraically identical to `step` (it computes
    /// `lr·m̂/(√v̂+ε)` exactly when ε is rescaled), numerically within
    /// rounding — the update differs only in float evaluation order.
    pub fn step_fast(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len(), "parameter count fixed at construction");
        assert_eq!(params.len(), grads.len());
        self.t += 1;
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        let b1t = 1.0 - b1.powi(self.t as i32);
        let b2t_sqrt = (1.0 - b2.powi(self.t as i32)).sqrt();
        let step_size = self.cfg.lr * b2t_sqrt / b1t;
        let eps_hat = self.cfg.eps * b2t_sqrt;
        for i in 0..params.len() {
            let g = grads[i];
            let m = b1 * self.m[i] + (1.0 - b1) * g;
            let v = b2 * self.v[i] + (1.0 - b2) * g * g;
            self.m[i] = m;
            self.v[i] = v;
            params[i] -= step_size * m / (v.sqrt() + eps_hat);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x - 3)²; Adam must converge to 3.
    #[test]
    fn converges_on_quadratic() {
        let mut x = vec![0.0f64];
        let mut opt = Adam::new(1, AdamConfig { lr: 0.1, ..Default::default() });
        for _ in 0..500 {
            let g = vec![2.0 * (x[0] - 3.0)];
            opt.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "{}", x[0]);
    }

    #[test]
    fn bias_correction_makes_first_step_lr_sized() {
        // With a unit gradient, the first Adam step is ≈ lr.
        let mut x = vec![0.0f64];
        let mut opt = Adam::new(1, AdamConfig { lr: 0.05, ..Default::default() });
        opt.step(&mut x, &[1.0]);
        assert!((x[0] + 0.05).abs() < 1e-6, "{}", x[0]);
    }

    #[test]
    fn per_coordinate_scaling() {
        // A coordinate with a 100× larger gradient still moves ≈ lr per
        // step (Adam normalizes by RMS).
        let mut x = vec![0.0f64, 0.0];
        let mut opt = Adam::new(2, AdamConfig { lr: 0.01, ..Default::default() });
        for _ in 0..10 {
            opt.step(&mut x, &[0.01, 1.0]);
        }
        assert!((x[0] - x[1]).abs() < 0.02, "{x:?}");
    }

    #[test]
    fn steps_counted() {
        let mut opt = Adam::new(3, AdamConfig::default());
        let mut p = vec![0.0; 3];
        for _ in 0..7 {
            opt.step(&mut p, &[0.1, 0.2, 0.3]);
        }
        assert_eq!(opt.steps(), 7);
    }

    #[test]
    #[should_panic(expected = "parameter count")]
    fn rejects_dimension_mismatch() {
        let mut opt = Adam::new(2, AdamConfig::default());
        let mut p = vec![0.0; 3];
        opt.step(&mut p, &[0.0; 3]);
    }

    #[test]
    fn step_fast_tracks_step_to_rounding() {
        // The two formulations are the same algebra in a different
        // evaluation order; over hundreds of steps on a rough loss the
        // trajectories must agree to ~1e-9 (rounding, not drift).
        let cfg = AdamConfig { lr: 0.02, ..Default::default() };
        let (mut slow, mut fast) = (Adam::new(3, cfg), Adam::new(3, cfg));
        let mut ps = vec![0.5f64, -1.0, 2.0];
        let mut pf = ps.clone();
        for t in 0..500 {
            let g: Vec<f64> = ps
                .iter()
                .enumerate()
                .map(|(i, x)| 2.0 * (x - i as f64) + (t as f64 * 0.7).sin() * 0.1)
                .collect();
            slow.step(&mut ps, &g);
            fast.step_fast(&mut pf, &g);
        }
        assert_eq!(slow.steps(), fast.steps());
        for (a, b) in ps.iter().zip(&pf) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
