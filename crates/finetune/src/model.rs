//! The fine-tunable model: a frozen (quantized) base head plus a
//! LoRA-style low-rank adapter.
//!
//! QLoRA (paper §3.4) freezes 4-bit-quantized base weights and learns a
//! low-rank additive delta. At our scale the "base model" is the
//! surrogate's detection head: a linear layer fitted once to mimic the
//! pre-trained model's answers, then 4-bit quantized and frozen.
//! Fine-tuning trains `ΔW = (α/r)·B·A` (rank `r`, scale `α`) with
//! dropout on the input — structurally the same recipe.

use serde::{Deserialize, Serialize};

/// Logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// 4-bit absmax quantization of a weight vector (NF4-flavoured grid).
pub fn quantize_4bit(w: &[f64]) -> Vec<f64> {
    let absmax = w.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    if absmax == 0.0 {
        return w.to_vec();
    }
    w.iter()
        .map(|x| {
            let q = (x / absmax * 7.0).round().clamp(-8.0, 7.0);
            q / 7.0 * absmax
        })
        .collect()
}

/// Reusable flat scratch for the allocation-free training loop.
///
/// One instance lives for a whole [`FineTuned::train`](crate::FineTuned)
/// call; every buffer the per-example step needs — dropout mask, dropped
/// input, `A·x` activations, and the fused adapter gradient — is sized
/// once here and overwritten in place each step, so the inner loop
/// touches the allocator zero times after warmup (proved by the
/// `count-train-allocs` gated test).
#[derive(Debug, Clone)]
pub struct TrainScratch {
    /// Per-input dropout keep mask.
    pub mask: Vec<bool>,
    /// Input with dropout applied (`x` where kept, `0` where dropped).
    pub xd: Vec<f64>,
    /// Adapter activations `(A·xd)`, one per rank.
    pub ax: Vec<f64>,
    /// Fused gradient buffer: `grad_A` (`rank × dim`) then `grad_B`
    /// (`rank`) — same layout as [`LoraHead`]'s parameter buffer.
    pub grads: Vec<f64>,
}

impl TrainScratch {
    /// Scratch sized for a rank-`rank`, `dim`-wide adapter.
    pub fn new(rank: usize, dim: usize) -> TrainScratch {
        TrainScratch {
            mask: vec![true; dim],
            xd: vec![0.0; dim],
            ax: vec![0.0; rank],
            grads: vec![0.0; rank * dim + rank],
        }
    }

    /// Refill the dropout mask in place, drawing exactly `mask.len()`
    /// uniforms — the same stream positions the reference loop's
    /// per-step `Vec<bool>` collect consumed, so seeded runs reproduce
    /// the historical masks bit for bit.
    pub fn fill_mask(&mut self, rng: &mut crate::train::Rng, dropout: f64) {
        for m in &mut self.mask {
            *m = rng.uniform() >= dropout;
        }
    }
}

/// A rank-`r` adapter over a `dim`-wide linear head.
///
/// The effective weight applied to input `x` is
/// `w_base + (alpha / r) * B A` where `A ∈ R^{r×dim}`, `B ∈ R^{1×r}`
/// (we only need a scalar output head). `A` and `B` live in one
/// contiguous buffer (`A` rows, then `B`) so a single fused
/// [`Adam`](crate::adam::Adam) can update every adapter parameter in one
/// pass; per-coordinate updates make this bit-identical to the old
/// separate `opt_a`/`opt_b` pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoraHead {
    /// Frozen base weights (quantized).
    pub w_base: Vec<f64>,
    /// Frozen base bias.
    pub b_base: f64,
    /// Contiguous adapter parameters: down-projection `A` (`r × dim`,
    /// row-major) followed by up-projection `B` (`1 × r`).
    ab: Vec<f64>,
    /// Adapter rank.
    pub rank: usize,
    /// LoRA scale α.
    pub alpha: f64,
}

impl LoraHead {
    /// Wrap a base head; the adapter starts at zero (B = 0), so the
    /// fine-tuned model initially equals the base model.
    pub fn new(w_base: Vec<f64>, b_base: f64, rank: usize, alpha: f64, seed: u64) -> LoraHead {
        let dim = w_base.len();
        let mut rng = crate::train::Rng::new(seed);
        // A ~ small random (like LoRA's gaussian init), B = 0.
        let mut ab: Vec<f64> =
            (0..rank * dim).map(|_| (rng.uniform() - 0.5) * 0.02).collect();
        ab.resize(rank * dim + rank, 0.0);
        LoraHead { w_base: quantize_4bit(&w_base), b_base, ab, rank, alpha }
    }

    /// Dimension of the input features.
    pub fn dim(&self) -> usize {
        self.w_base.len()
    }

    /// Number of adapter parameters (`rank·dim + rank`), the length of
    /// the fused optimizer's parameter vector.
    pub fn adapter_params(&self) -> usize {
        self.ab.len()
    }

    /// Adapter down-projection `A` (`r × dim`, row-major).
    pub fn a(&self) -> &[f64] {
        &self.ab[..self.rank * self.dim()]
    }

    /// Adapter up-projection `B` (`1 × r`).
    pub fn b(&self) -> &[f64] {
        &self.ab[self.rank * self.dim()..]
    }

    /// Raw logit for an input.
    pub fn logit(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim());
        let mut z = self.b_base;
        for (w, xi) in self.w_base.iter().zip(x) {
            z += w * xi;
        }
        // Adapter path: B (A x) * alpha / r.
        let scale = self.alpha / self.rank.max(1) as f64;
        let (a, b) = self.ab.split_at(self.rank * self.dim());
        for r in 0..self.rank {
            let mut ax = 0.0;
            let row = &a[r * self.dim()..(r + 1) * self.dim()];
            for (a, xi) in row.iter().zip(x) {
                ax += a * xi;
            }
            z += scale * b[r] * ax;
        }
        z
    }

    /// Probability of the positive class.
    pub fn prob(&self, x: &[f64]) -> f64 {
        sigmoid(self.logit(x))
    }

    /// Adapter gradients for one example (cross-entropy loss) without
    /// applying them. Returns `(grad_a, grad_b, loss)`. This is the
    /// allocating reference path; training proper uses
    /// [`LoraHead::adam_step_scratch`], which produces bit-identical
    /// gradients without the intermediate `Vec`s.
    pub fn grads(&self, x: &[f64], y: f64, dropout_mask: &[bool]) -> (Vec<f64>, Vec<f64>, f64) {
        let dim = self.dim();
        let (a, b) = self.ab.split_at(self.rank * dim);
        let xd: Vec<f64> =
            x.iter().zip(dropout_mask).map(|(v, keep)| if *keep { *v } else { 0.0 }).collect();
        let p = self.prob(&xd);
        let err = p - y; // dL/dz for cross-entropy + sigmoid
        let scale = self.alpha / self.rank.max(1) as f64;
        let ax: Vec<f64> = (0..self.rank)
            .map(|r| {
                let row = &a[r * dim..(r + 1) * dim];
                row.iter().zip(&xd).map(|(a, xi)| a * xi).sum()
            })
            .collect();
        // dz/dB_r = scale·(A x)_r ; dz/dA_rj = scale·B_r·x_j
        let mut ga = vec![0.0; self.rank * dim];
        let mut gb = vec![0.0; self.rank];
        for r in 0..self.rank {
            gb[r] = err * scale * ax[r];
            let brow = b[r];
            for (j, xi) in xd.iter().enumerate() {
                ga[r * dim + j] = err * scale * brow * xi;
            }
        }
        let eps = 1e-12;
        let loss = -(y * (p + eps).ln() + (1.0 - y) * (1.0 - p + eps).ln());
        (ga, gb, loss)
    }

    /// Plain SGD step for one example (kept for tests/ablations);
    /// training proper uses [`crate::adam::Adam`]. Returns the loss.
    pub fn sgd_step(&mut self, x: &[f64], y: f64, lr: f64, dropout_mask: &[bool]) -> f64 {
        let (ga, gb, loss) = self.grads(x, y, dropout_mask);
        let split = self.rank * self.dim();
        let (a, b) = self.ab.split_at_mut(split);
        for (a, g) in a.iter_mut().zip(&ga) {
            *a -= lr * g;
        }
        for (b, g) in b.iter_mut().zip(&gb) {
            *b -= lr * g;
        }
        loss
    }

    /// One Adam step on the adapter, two optimizers (reference path; the
    /// fast loop fuses both into one via [`LoraHead::adam_step_scratch`]).
    pub fn adam_step(
        &mut self,
        x: &[f64],
        y: f64,
        opt_a: &mut crate::adam::Adam,
        opt_b: &mut crate::adam::Adam,
        dropout_mask: &[bool],
    ) -> f64 {
        let (ga, gb, loss) = self.grads(x, y, dropout_mask);
        let split = self.rank * self.dim();
        let (a, b) = self.ab.split_at_mut(split);
        opt_a.step(a, &ga);
        opt_b.step(b, &gb);
        loss
    }

    /// Allocation-free fused training step: dropout + forward + backward
    /// into `scratch`, then one [`Adam::step_fast`](crate::adam::Adam)
    /// over the whole contiguous parameter buffer. `scratch.mask` must
    /// already hold this step's dropout draw (see
    /// [`TrainScratch::fill_mask`]).
    ///
    /// Gradients are bit-identical to [`LoraHead::grads`]: the dropped
    /// input and the base-head dot product are fused into one pass that
    /// preserves the reference accumulation order, `A·x` reuses the same
    /// left-to-right zip, and the hoisted `err·scale·B_r` factor keeps
    /// the reference's left-associated multiply order. The (unused) loss
    /// is not computed.
    pub fn adam_step_scratch(
        &mut self,
        x: &[f64],
        y: f64,
        opt: &mut crate::adam::Adam,
        scratch: &mut TrainScratch,
    ) {
        let dim = self.dim();
        debug_assert_eq!(x.len(), dim);
        debug_assert_eq!(scratch.mask.len(), dim);
        debug_assert_eq!(scratch.grads.len(), self.ab.len());
        let scale = self.alpha / self.rank.max(1) as f64;
        let (a, b) = self.ab.split_at(self.rank * dim);

        // Fused dropout + base-head forward (same accumulation order as
        // `logit` over the dropped input).
        let mut z = self.b_base;
        for (((&xi, &keep), xd), &w) in x
            .iter()
            .zip(&scratch.mask)
            .zip(scratch.xd.iter_mut())
            .zip(&self.w_base)
        {
            let xi = if keep { xi } else { 0.0 };
            *xd = xi;
            z += w * xi;
        }
        // Adapter forward, activations kept for the backward pass.
        for r in 0..self.rank {
            let row = &a[r * dim..(r + 1) * dim];
            let mut ax = 0.0;
            for (a, xi) in row.iter().zip(&scratch.xd) {
                ax += a * xi;
            }
            scratch.ax[r] = ax;
            z += scale * b[r] * ax;
        }

        let err = sigmoid(z) - y; // dL/dz for cross-entropy + sigmoid
        let (ga, gb) = scratch.grads.split_at_mut(self.rank * dim);
        for r in 0..self.rank {
            gb[r] = err * scale * scratch.ax[r];
            let c = err * scale * b[r];
            for (g, xi) in ga[r * dim..(r + 1) * dim].iter_mut().zip(&scratch.xd) {
                *g = c * xi;
            }
        }
        opt.step_fast(&mut self.ab, &scratch.grads);
    }
}

/// Fit a plain logistic head by gradient descent (used to build the
/// frozen base head that mimics the surrogate's behaviour). Accepts any
/// slice-of-rows (`Vec<f64>` or borrowed `&[f64]` rows alike), so the
/// fast trainer can feed cached artifact vectors without copying them.
pub fn fit_base_head<X: AsRef<[f64]>>(
    xs: &[X],
    ys: &[f64],
    epochs: usize,
    lr: f64,
    l2: f64,
) -> (Vec<f64>, f64) {
    let dim = xs.first().map(|x| x.as_ref().len()).unwrap_or(0);
    let mut w = vec![0.0f64; dim];
    let mut b = 0.0f64;
    for _ in 0..epochs {
        for (x, y) in xs.iter().zip(ys) {
            let x = x.as_ref();
            let mut z = b;
            for (wi, xi) in w.iter().zip(x) {
                z += wi * xi;
            }
            let err = sigmoid(z) - y;
            for (wi, xi) in w.iter_mut().zip(x) {
                *wi -= lr * (err * xi + l2 * *wi);
            }
            b -= lr * err;
        }
    }
    (w, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(100.0) > 1.0 - 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantization_preserves_scale() {
        let w = vec![0.5, -1.0, 0.25, 0.0];
        let q = quantize_4bit(&w);
        assert_eq!(q.len(), 4);
        assert!((q[1] + 1.0).abs() < 1e-9); // absmax element is exact
        for (a, b) in w.iter().zip(&q) {
            assert!((a - b).abs() <= 1.0 / 7.0 + 1e-9);
        }
    }

    #[test]
    fn adapter_starts_as_identity() {
        let head = LoraHead::new(vec![1.0, -2.0], 0.5, 4, 16.0, 7);
        let x = vec![0.3, 0.1];
        let base_z = 0.5 + head.w_base[0] * 0.3 + head.w_base[1] * 0.1;
        assert!((head.logit(&x) - base_z).abs() < 1e-9);
    }

    #[test]
    fn training_separates_separable_data() {
        // y = 1 iff x0 > 0.
        let xs: Vec<Vec<f64>> =
            (0..100).map(|i| vec![if i % 2 == 0 { 1.0 } else { -1.0 }, 0.5]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let mut head = LoraHead::new(vec![0.0, 0.0], 0.0, 4, 16.0, 3);
        let keep = vec![true; 2];
        for _ in 0..200 {
            for (x, y) in xs.iter().zip(&ys) {
                head.sgd_step(x, *y, 0.5, &keep);
            }
        }
        assert!(head.prob(&[1.0, 0.5]) > 0.9);
        assert!(head.prob(&[-1.0, 0.5]) < 0.1);
    }

    #[test]
    fn base_head_fits_linear_rule() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 2) as f64]).collect();
        let ys: Vec<f64> = (0..50).map(|i| (i % 2) as f64).collect();
        let (w, b) = fit_base_head(&xs, &ys, 300, 0.5, 0.0);
        assert!(sigmoid(w[0] + b) > 0.85);
        assert!(sigmoid(b) < 0.15);
    }

    #[test]
    fn base_head_accepts_borrowed_rows() {
        // The fast trainer hands over cached `&[f64]` artifact rows; the
        // generic must produce the exact same fit as owned rows.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![(i % 2) as f64, 0.25]).collect();
        let ys: Vec<f64> = (0..20).map(|i| (i % 2) as f64).collect();
        let borrowed: Vec<&[f64]> = xs.iter().map(Vec::as_slice).collect();
        assert_eq!(fit_base_head(&xs, &ys, 50, 0.3, 1e-3), fit_base_head(&borrowed, &ys, 50, 0.3, 1e-3));
    }

    #[test]
    fn fused_step_gradients_match_reference_bitwise() {
        let mut rng = crate::train::Rng::new(11);
        let dim = 13;
        let rank = 4;
        let w: Vec<f64> = (0..dim).map(|_| rng.uniform() - 0.5).collect();
        let mut head = LoraHead::new(w, 0.2, rank, 16.0, 5);
        let cfg = crate::adam::AdamConfig { lr: 0.01, ..Default::default() };
        let mut opt = crate::adam::Adam::new(head.adapter_params(), cfg);
        let mut scratch = TrainScratch::new(rank, dim);
        let mut mask_rng = crate::train::Rng::new(99);
        for step in 0..50 {
            let x: Vec<f64> =
                (0..dim).map(|i| (((step * dim + i) as f64) * 0.37).sin()).collect();
            let y = f64::from(step % 2 == 0);
            scratch.fill_mask(&mut mask_rng, 0.3);
            let (ga, gb, _) = head.grads(&x, y, &scratch.mask);
            head.adam_step_scratch(&x, y, &mut opt, &mut scratch);
            let (sa, sb) = scratch.grads.split_at(rank * dim);
            assert_eq!(sa, &ga[..], "grad_A diverged at step {step}");
            assert_eq!(sb, &gb[..], "grad_B diverged at step {step}");
        }
    }

    #[test]
    fn fused_training_tracks_two_optimizer_reference() {
        // Same inputs, same dropout masks: the fused single-Adam
        // `step_fast` path and the old two-optimizer `step` path differ
        // only in Adam's float evaluation order, so parameters must
        // agree to rounding over a full training run.
        let mut rng = crate::train::Rng::new(21);
        let dim = 17;
        let rank = 3;
        let w: Vec<f64> = (0..dim).map(|_| rng.uniform() - 0.5).collect();
        let mut ref_head = LoraHead::new(w, -0.1, rank, 16.0, 5);
        let mut fast_head = ref_head.clone();
        let cfg = crate::adam::AdamConfig { lr: 0.02, ..Default::default() };
        let mut opt_a = crate::adam::Adam::new(rank * dim, cfg);
        let mut opt_b = crate::adam::Adam::new(rank, cfg);
        let mut opt = crate::adam::Adam::new(fast_head.adapter_params(), cfg);
        let mut scratch = TrainScratch::new(rank, dim);
        let mut mask_rng = crate::train::Rng::new(7);
        for step in 0..300 {
            let x: Vec<f64> =
                (0..dim).map(|i| (((step * dim + i) as f64) * 0.61).cos()).collect();
            let y = f64::from(step % 3 == 0);
            scratch.fill_mask(&mut mask_rng, 0.1);
            ref_head.adam_step(&x, y, &mut opt_a, &mut opt_b, &scratch.mask);
            fast_head.adam_step_scratch(&x, y, &mut opt, &mut scratch);
        }
        for (p, q) in ref_head.a().iter().zip(fast_head.a()) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
        for (p, q) in ref_head.b().iter().zip(fast_head.b()) {
            assert!((p - q).abs() < 1e-9, "{p} vs {q}");
        }
    }
}
