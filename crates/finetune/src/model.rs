//! The fine-tunable model: a frozen (quantized) base head plus a
//! LoRA-style low-rank adapter.
//!
//! QLoRA (paper §3.4) freezes 4-bit-quantized base weights and learns a
//! low-rank additive delta. At our scale the "base model" is the
//! surrogate's detection head: a linear layer fitted once to mimic the
//! pre-trained model's answers, then 4-bit quantized and frozen.
//! Fine-tuning trains `ΔW = (α/r)·B·A` (rank `r`, scale `α`) with
//! dropout on the input — structurally the same recipe.

use serde::{Deserialize, Serialize};

/// Logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// 4-bit absmax quantization of a weight vector (NF4-flavoured grid).
pub fn quantize_4bit(w: &[f64]) -> Vec<f64> {
    let absmax = w.iter().fold(0.0f64, |m, x| m.max(x.abs()));
    if absmax == 0.0 {
        return w.to_vec();
    }
    w.iter()
        .map(|x| {
            let q = (x / absmax * 7.0).round().clamp(-8.0, 7.0);
            q / 7.0 * absmax
        })
        .collect()
}

/// A rank-`r` adapter over a `dim`-wide linear head.
///
/// The effective weight applied to input `x` is
/// `w_base + (alpha / r) * B A` where `A ∈ R^{r×dim}`, `B ∈ R^{1×r}`
/// (we only need a scalar output head).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoraHead {
    /// Frozen base weights (quantized).
    pub w_base: Vec<f64>,
    /// Frozen base bias.
    pub b_base: f64,
    /// Adapter down-projection, `r × dim` (row-major).
    pub a: Vec<f64>,
    /// Adapter up-projection, `1 × r`.
    pub b: Vec<f64>,
    /// Adapter rank.
    pub rank: usize,
    /// LoRA scale α.
    pub alpha: f64,
}

impl LoraHead {
    /// Wrap a base head; the adapter starts at zero (B = 0), so the
    /// fine-tuned model initially equals the base model.
    pub fn new(w_base: Vec<f64>, b_base: f64, rank: usize, alpha: f64, seed: u64) -> LoraHead {
        let dim = w_base.len();
        let mut rng = crate::train::Rng::new(seed);
        // A ~ small random (like LoRA's gaussian init), B = 0.
        let a: Vec<f64> =
            (0..rank * dim).map(|_| (rng.uniform() - 0.5) * 0.02).collect();
        let b = vec![0.0; rank];
        LoraHead { w_base: quantize_4bit(&w_base), b_base, a, b, rank, alpha }
    }

    /// Dimension of the input features.
    pub fn dim(&self) -> usize {
        self.w_base.len()
    }

    /// Raw logit for an input.
    pub fn logit(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim());
        let mut z = self.b_base;
        for (w, xi) in self.w_base.iter().zip(x) {
            z += w * xi;
        }
        // Adapter path: B (A x) * alpha / r.
        let scale = self.alpha / self.rank.max(1) as f64;
        for r in 0..self.rank {
            let mut ax = 0.0;
            let row = &self.a[r * self.dim()..(r + 1) * self.dim()];
            for (a, xi) in row.iter().zip(x) {
                ax += a * xi;
            }
            z += scale * self.b[r] * ax;
        }
        z
    }

    /// Probability of the positive class.
    pub fn prob(&self, x: &[f64]) -> f64 {
        sigmoid(self.logit(x))
    }

    /// Adapter gradients for one example (cross-entropy loss) without
    /// applying them. Returns `(grad_a, grad_b, loss)`.
    pub fn grads(&self, x: &[f64], y: f64, dropout_mask: &[bool]) -> (Vec<f64>, Vec<f64>, f64) {
        let dim = self.dim();
        let xd: Vec<f64> =
            x.iter().zip(dropout_mask).map(|(v, keep)| if *keep { *v } else { 0.0 }).collect();
        let p = self.prob(&xd);
        let err = p - y; // dL/dz for cross-entropy + sigmoid
        let scale = self.alpha / self.rank.max(1) as f64;
        let ax: Vec<f64> = (0..self.rank)
            .map(|r| {
                let row = &self.a[r * dim..(r + 1) * dim];
                row.iter().zip(&xd).map(|(a, xi)| a * xi).sum()
            })
            .collect();
        // dz/dB_r = scale·(A x)_r ; dz/dA_rj = scale·B_r·x_j
        let mut ga = vec![0.0; self.rank * dim];
        let mut gb = vec![0.0; self.rank];
        for r in 0..self.rank {
            gb[r] = err * scale * ax[r];
            let brow = self.b[r];
            for (j, xi) in xd.iter().enumerate() {
                ga[r * dim + j] = err * scale * brow * xi;
            }
        }
        let eps = 1e-12;
        let loss = -(y * (p + eps).ln() + (1.0 - y) * (1.0 - p + eps).ln());
        (ga, gb, loss)
    }

    /// Plain SGD step for one example (kept for tests/ablations);
    /// training proper uses [`crate::adam::Adam`]. Returns the loss.
    pub fn sgd_step(&mut self, x: &[f64], y: f64, lr: f64, dropout_mask: &[bool]) -> f64 {
        let (ga, gb, loss) = self.grads(x, y, dropout_mask);
        for (a, g) in self.a.iter_mut().zip(&ga) {
            *a -= lr * g;
        }
        for (b, g) in self.b.iter_mut().zip(&gb) {
            *b -= lr * g;
        }
        loss
    }

    /// One Adam step on the adapter.
    pub fn adam_step(
        &mut self,
        x: &[f64],
        y: f64,
        opt_a: &mut crate::adam::Adam,
        opt_b: &mut crate::adam::Adam,
        dropout_mask: &[bool],
    ) -> f64 {
        let (ga, gb, loss) = self.grads(x, y, dropout_mask);
        opt_a.step(&mut self.a, &ga);
        opt_b.step(&mut self.b, &gb);
        loss
    }
}

/// Fit a plain logistic head by gradient descent (used to build the
/// frozen base head that mimics the surrogate's behaviour).
pub fn fit_base_head(
    xs: &[Vec<f64>],
    ys: &[f64],
    epochs: usize,
    lr: f64,
    l2: f64,
) -> (Vec<f64>, f64) {
    let dim = xs.first().map(Vec::len).unwrap_or(0);
    let mut w = vec![0.0f64; dim];
    let mut b = 0.0f64;
    for _ in 0..epochs {
        for (x, y) in xs.iter().zip(ys) {
            let mut z = b;
            for (wi, xi) in w.iter().zip(x) {
                z += wi * xi;
            }
            let err = sigmoid(z) - y;
            for (wi, xi) in w.iter_mut().zip(x) {
                *wi -= lr * (err * xi + l2 * *wi);
            }
            b -= lr * err;
        }
    }
    (w, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(100.0) > 1.0 - 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantization_preserves_scale() {
        let w = vec![0.5, -1.0, 0.25, 0.0];
        let q = quantize_4bit(&w);
        assert_eq!(q.len(), 4);
        assert!((q[1] + 1.0).abs() < 1e-9); // absmax element is exact
        for (a, b) in w.iter().zip(&q) {
            assert!((a - b).abs() <= 1.0 / 7.0 + 1e-9);
        }
    }

    #[test]
    fn adapter_starts_as_identity() {
        let head = LoraHead::new(vec![1.0, -2.0], 0.5, 4, 16.0, 7);
        let x = vec![0.3, 0.1];
        let base_z = 0.5 + head.w_base[0] * 0.3 + head.w_base[1] * 0.1;
        assert!((head.logit(&x) - base_z).abs() < 1e-9);
    }

    #[test]
    fn training_separates_separable_data() {
        // y = 1 iff x0 > 0.
        let xs: Vec<Vec<f64>> =
            (0..100).map(|i| vec![if i % 2 == 0 { 1.0 } else { -1.0 }, 0.5]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
        let mut head = LoraHead::new(vec![0.0, 0.0], 0.0, 4, 16.0, 3);
        let keep = vec![true; 2];
        for _ in 0..200 {
            for (x, y) in xs.iter().zip(&ys) {
                head.sgd_step(x, *y, 0.5, &keep);
            }
        }
        assert!(head.prob(&[1.0, 0.5]) > 0.9);
        assert!(head.prob(&[-1.0, 0.5]) < 0.1);
    }

    #[test]
    fn base_head_fits_linear_rule() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![(i % 2) as f64]).collect();
        let ys: Vec<f64> = (0..50).map(|i| (i % 2) as f64).collect();
        let (w, b) = fit_base_head(&xs, &ys, 300, 0.5, 0.0);
        assert!(sigmoid(w[0] + b) > 0.85);
        assert!(sigmoid(b) < 0.15);
    }
}
