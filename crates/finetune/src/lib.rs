//! `finetune` — from-scratch fine-tuning of the surrogate LLMs.
//!
//! Reproduces the paper's §3.4 QLoRA recipe at feature scale: a frozen,
//! 4-bit-quantized base head fitted to mimic the pre-trained model's
//! answers, plus a trained low-rank (LoRA) adapter with input dropout,
//! optimized by Adam on cross-entropy over the DRB-ML prompt–response
//! pairs, evaluated under the paper's stratified 5-fold CV (§3.5).
//!
//! Only the open-weight models (StarChat-β, Llama2-7b) are fine-tunable
//! (§4.3: "the GPT models do not support fine-tuning").

#![warn(missing_docs)]

pub mod adam;
pub mod cv;
pub mod model;
pub mod ngram;
pub mod train;

pub use adam::{Adam, AdamConfig};
pub use cv::{folds_for, mean, std_dev, stratified_folds, Fold};
pub use cv::stratified_folds_by;
pub use model::{fit_base_head, quantize_4bit, sigmoid, LoraHead, TrainScratch};
pub use ngram::{feature_vector, feature_vector_of, ngram_vector, FEATURE_DIM, NGRAM_DIM};
pub use train::{FineTuned, Rng, TrainConfig};

use llm::{KernelView, ModelKind, Surrogate, VarIdOutcome};

/// Fine-tuned variable identification: training mostly teaches output
/// formats and yes/no discipline, so the fine-tuned model keeps the base
/// pair-finding ability (recall unchanged — paper Table 6) but gates
/// hallucinated pairs when the trained detector is confident there is no
/// race (precision up slightly).
pub fn varid_outcome_finetuned(
    ft: &FineTuned,
    surrogate: &Surrogate,
    k: &KernelView,
) -> VarIdOutcome {
    let base = surrogate.varid_outcome(k);
    if base == VarIdOutcome::WrongPairs && ft.prob(surrogate, k) < 0.40 {
        VarIdOutcome::NoPairs
    } else {
        base
    }
}

/// Ensure only open models are fine-tuned (mirrors the paper's API gap).
pub fn check_finetunable(kind: ModelKind) -> Result<(), String> {
    if kind.open_weights() {
        Ok(())
    } else {
        Err(format!("{} is API-only and cannot be fine-tuned", kind.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt_models_not_finetunable() {
        assert!(check_finetunable(ModelKind::Gpt4).is_err());
        assert!(check_finetunable(ModelKind::StarChatBeta).is_ok());
    }
}
