//! Stratified 5-fold cross validation (paper §3.5).
//!
//! The 198-entry subset (100 positive / 98 negative) is split into
//! three folds of 20+20 and two folds of 20+19; each fold serves once
//! as validation while the rest trains.

use crate::train::Rng;
use llm::KernelView;
use serde::{Deserialize, Serialize};

/// One fold: indices into the dataset slice.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fold {
    /// Validation indices.
    pub test: Vec<usize>,
    /// Training indices (complement).
    pub train: Vec<usize>,
}

/// Build stratified k folds over the given labels.
///
/// Positives and negatives are shuffled (seeded) and dealt round-robin,
/// so every fold keeps the overall class balance; with k=5 over 100/98
/// this reproduces the paper's 40/40/40/39/39 fold sizes.
pub fn stratified_folds(labels: &[bool], k: usize, seed: u64) -> Vec<Fold> {
    stratified_folds_by(labels, None, k, seed)
}

/// Stratified folds that additionally balance a per-item score (e.g.
/// kernel difficulty): items are sorted by score within each class and
/// dealt round-robin, so every fold sees a representative spread — the
/// variance-reduction that keeps the paper's per-fold SDs small.
pub fn stratified_folds_by(
    labels: &[bool],
    score: Option<&[f64]>,
    k: usize,
    seed: u64,
) -> Vec<Fold> {
    let mut pos: Vec<usize> = (0..labels.len()).filter(|&i| labels[i]).collect();
    let mut neg: Vec<usize> = (0..labels.len()).filter(|&i| !labels[i]).collect();
    let mut rng = Rng::new(seed);
    rng.shuffle(&mut pos);
    rng.shuffle(&mut neg);
    if let Some(score) = score {
        // total_cmp: a NaN score (e.g. a degenerate difficulty from a
        // 0-token kernel) must not panic the fold builder — NaNs sort
        // after every real score and stratification proceeds.
        pos.sort_by(|&a, &b| score[a].total_cmp(&score[b]));
        neg.sort_by(|&a, &b| score[a].total_cmp(&score[b]));
        // Seeded rotation keeps fold membership seed-dependent.
        let rot = (rng.next_u64() % k as u64) as usize;
        let pr = rot.min(pos.len().saturating_sub(1));
        let nr = rot.min(neg.len().saturating_sub(1));
        pos.rotate_left(pr);
        neg.rotate_left(nr);
    }

    let mut tests: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (j, &i) in pos.iter().enumerate() {
        tests[j % k].push(i);
    }
    for (j, &i) in neg.iter().enumerate() {
        tests[j % k].push(i);
    }
    tests
        .into_iter()
        .map(|mut test| {
            test.sort_unstable();
            let train: Vec<usize> =
                (0..labels.len()).filter(|i| test.binary_search(i).is_err()).collect();
            Fold { test, train }
        })
        .collect()
}

/// Convenience: folds over kernel views, balanced by difficulty.
pub fn folds_for(views: &[KernelView], k: usize, seed: u64) -> Vec<Fold> {
    let labels: Vec<bool> = views.iter().map(|v| v.race).collect();
    let scores: Vec<f64> = views.iter().map(|v| v.difficulty).collect();
    stratified_folds_by(&labels, Some(&scores), k, seed)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_labels() -> Vec<bool> {
        // 100 positives, 98 negatives.
        let mut l = vec![true; 100];
        l.extend(vec![false; 98]);
        l
    }

    #[test]
    fn fold_sizes_match_paper() {
        let folds = stratified_folds(&paper_labels(), 5, 1);
        let mut sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![39, 39, 40, 40, 40], "paper §3.5 fold sizes");
    }

    #[test]
    fn folds_are_stratified() {
        let labels = paper_labels();
        let folds = stratified_folds(&labels, 5, 1);
        for f in &folds {
            let pos = f.test.iter().filter(|&&i| labels[i]).count();
            assert_eq!(pos, 20, "each fold holds exactly 20 positives");
        }
    }

    #[test]
    fn folds_partition_everything() {
        let labels = paper_labels();
        let folds = stratified_folds(&labels, 5, 9);
        let mut seen = vec![false; labels.len()];
        for f in &folds {
            for &i in &f.test {
                assert!(!seen[i], "index {i} in two folds");
                seen[i] = true;
            }
            // train + test = all
            assert_eq!(f.train.len() + f.test.len(), labels.len());
            for &i in &f.train {
                assert!(f.test.binary_search(&i).is_err());
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_per_seed() {
        let labels = paper_labels();
        assert_eq!(stratified_folds(&labels, 5, 7), stratified_folds(&labels, 5, 7));
        assert_ne!(
            stratified_folds(&labels, 5, 7)[0].test,
            stratified_folds(&labels, 5, 8)[0].test
        );
    }

    #[test]
    fn nan_scores_do_not_panic_stratification() {
        // Regression: `partial_cmp(..).unwrap()` panicked on NaN
        // difficulty scores; `total_cmp` must build valid folds instead.
        let labels: Vec<bool> = (0..50).map(|i| i % 2 == 0).collect();
        let mut scores: Vec<f64> = (0..50).map(|i| i as f64 / 50.0).collect();
        scores[3] = f64::NAN;
        scores[17] = f64::NAN;
        let folds = stratified_folds_by(&labels, Some(&scores), 5, 42);
        assert_eq!(folds.len(), 5);
        let mut seen = vec![false; labels.len()];
        for f in &folds {
            for &i in &f.test {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert_eq!(f.train.len() + f.test.len(), labels.len());
        }
        assert!(seen.iter().all(|&s| s), "NaN-scored items still partitioned");
    }

    #[test]
    fn mean_and_sd() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!((std_dev(&[1.0, 2.0, 3.0]) - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }
}
