//! Hashed token n-gram features.
//!
//! Fine-tuning sees the code as a language model would: token streams.
//! Unigrams and bigrams are feature-hashed into a fixed-width vector
//! (signed hashing to keep collisions unbiased). The hashing itself
//! lives in [`llm::artifact`] so the once-per-kernel
//! [`llm::AnalyzedKernel`] can cache the result; this module keeps the
//! fine-tuning-facing API and the cached accessor.

use llm::KernelView;

/// Width of the hashed n-gram vector.
pub use llm::NGRAM_DIM;

/// Hash a code snippet into a normalized n-gram vector.
pub use llm::ngram_vector;

/// Full fine-tuning feature vector: hashed n-grams + structural features.
pub fn feature_vector(code: &str) -> Vec<f64> {
    llm::AnalyzedKernel::analyze(code).full_vec
}

/// Cached variant of [`feature_vector`]: reads the kernel's shared
/// analysis artifact instead of re-tokenizing and re-parsing. Equal to
/// `feature_vector(&k.trimmed_code)` by construction.
pub fn feature_vector_of(k: &KernelView) -> &[f64] {
    &k.artifact().full_vec
}

/// Dimension of [`feature_vector`].
pub const FEATURE_DIM: usize = NGRAM_DIM + llm::CodeFeatures::DIM;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_has_fixed_dim() {
        let v = feature_vector("int main() { return 0; }");
        assert_eq!(v.len(), FEATURE_DIM);
    }

    #[test]
    fn deterministic() {
        let a = feature_vector("int x = 1;");
        let b = feature_vector("int x = 1;");
        assert_eq!(a, b);
    }

    #[test]
    fn different_code_differs() {
        let a = ngram_vector("#pragma omp critical");
        let b = ngram_vector("#pragma omp atomic");
        assert_ne!(a, b);
    }

    #[test]
    fn ngrams_are_normalized() {
        let v = ngram_vector("int a; int b; int c; int d; int e;");
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_code_is_zero_ngrams() {
        let v = ngram_vector("");
        assert!(v.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn cached_vector_matches_fresh() {
        let code = "int a[10]; int main() {\n#pragma omp parallel for\nfor (int i=0;i<9;i++) a[i]=a[i+1];\n return 0; }";
        let k = KernelView::new(1, code, true, vec![], 0.5);
        assert_eq!(feature_vector_of(&k), &feature_vector(code)[..]);
    }
}
