//! Hashed token n-gram features.
//!
//! Fine-tuning sees the code as a language model would: token streams.
//! Unigrams and bigrams are feature-hashed into a fixed-width vector
//! (signed hashing to keep collisions unbiased).

/// Width of the hashed n-gram vector.
pub const NGRAM_DIM: usize = 256;

fn mix(h: u64) -> u64 {
    let mut x = h;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a code snippet into a normalized n-gram vector.
pub fn ngram_vector(code: &str) -> Vec<f64> {
    let toks = llm::tokenize(code);
    let mut v = vec![0.0f64; NGRAM_DIM];
    let mut push = |h: u64| {
        let m = mix(h);
        let idx = (m % NGRAM_DIM as u64) as usize;
        let sign = if (m >> 63) & 1 == 0 { 1.0 } else { -1.0 };
        v[idx] += sign;
    };
    for w in toks.windows(2) {
        push(w[0].id as u64);
        push(((w[0].id as u64) << 32) | w[1].id as u64);
    }
    if let Some(last) = toks.last() {
        push(last.id as u64);
    }
    // L2 normalize so gradient scales are independent of code length.
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in &mut v {
            *x /= norm;
        }
    }
    v
}

/// Full fine-tuning feature vector: hashed n-grams + structural features.
pub fn feature_vector(code: &str) -> Vec<f64> {
    let mut v = ngram_vector(code);
    v.extend(llm::CodeFeatures::extract(code).to_vector());
    v
}

/// Dimension of [`feature_vector`].
pub const FEATURE_DIM: usize = NGRAM_DIM + llm::CodeFeatures::DIM;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_has_fixed_dim() {
        let v = feature_vector("int main() { return 0; }");
        assert_eq!(v.len(), FEATURE_DIM);
    }

    #[test]
    fn deterministic() {
        let a = feature_vector("int x = 1;");
        let b = feature_vector("int x = 1;");
        assert_eq!(a, b);
    }

    #[test]
    fn different_code_differs() {
        let a = ngram_vector("#pragma omp critical");
        let b = ngram_vector("#pragma omp atomic");
        assert_ne!(a, b);
    }

    #[test]
    fn ngrams_are_normalized() {
        let v = ngram_vector("int a; int b; int c; int d; int e;");
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_code_is_zero_ngrams() {
        let v = ngram_vector("");
        assert!(v.iter().all(|x| *x == 0.0));
    }
}
