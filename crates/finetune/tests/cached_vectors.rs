//! The fine-tuning loop reads feature vectors from the shared artifact
//! cache; they must match a from-source computation for every corpus
//! kernel, or the adapters would silently train on different inputs.

use drb_ml::Dataset;

#[test]
fn cached_feature_vectors_match_fresh_for_every_subset_view() {
    for v in Dataset::generate().subset_views() {
        assert_eq!(
            finetune::feature_vector_of(&v),
            &finetune::feature_vector(&v.trimmed_code)[..],
            "view {}: cached fine-tuning vector drifted",
            v.id
        );
    }
}
