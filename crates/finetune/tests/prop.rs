//! Property tests for the trainer: fold invariants over arbitrary label
//! vectors, quantization error bounds, optimizer sanity.

use finetune::{quantize_4bit, sigmoid, stratified_folds, LoraHead};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn folds_partition_any_labels(
        labels in proptest::collection::vec(any::<bool>(), 5..200),
        k in 2usize..8,
        seed in 0u64..1000,
    ) {
        let folds = stratified_folds(&labels, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![0u32; labels.len()];
        for f in &folds {
            for &i in &f.test {
                seen[i] += 1;
            }
            // Train is the exact complement.
            prop_assert_eq!(f.train.len() + f.test.len(), labels.len());
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each item in exactly one test fold");
    }

    #[test]
    fn folds_balance_classes(
        n_pos in 10usize..80,
        n_neg in 10usize..80,
        seed in 0u64..100,
    ) {
        let mut labels = vec![true; n_pos];
        labels.extend(vec![false; n_neg]);
        let folds = stratified_folds(&labels, 5, seed);
        for f in &folds {
            let pos = f.test.iter().filter(|&&i| labels[i]).count();
            // Per-fold positives differ by at most 1 from the ideal share.
            let ideal = n_pos as f64 / 5.0;
            prop_assert!((pos as f64 - ideal).abs() <= 1.0, "{pos} vs {ideal}");
        }
    }

    #[test]
    fn quantization_error_bounded(w in proptest::collection::vec(-10.0f64..10.0, 1..64)) {
        let q = quantize_4bit(&w);
        let absmax = w.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        for (a, b) in w.iter().zip(&q) {
            prop_assert!((a - b).abs() <= absmax / 7.0 / 2.0 + 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn quantization_idempotent(w in proptest::collection::vec(-5.0f64..5.0, 1..32)) {
        let q1 = quantize_4bit(&w);
        let q2 = quantize_4bit(&q1);
        for (a, b) in q1.iter().zip(&q2) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sigmoid_monotone(a in -20.0f64..20.0, b in -20.0f64..20.0) {
        if a < b {
            prop_assert!(sigmoid(a) <= sigmoid(b));
        }
        prop_assert!((0.0..=1.0).contains(&sigmoid(a)));
    }

    #[test]
    fn zero_adapter_is_identity(
        pairs in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 1..16),
        bias in -2.0f64..2.0,
        seed in 0u64..50,
    ) {
        let (w, x): (Vec<f64>, Vec<f64>) = pairs.into_iter().unzip();
        let head = LoraHead::new(w.clone(), bias, 4, 16.0, seed);
        let manual: f64 = bias + head.w_base.iter().zip(&x).map(|(a, b)| a * b).sum::<f64>();
        prop_assert!((head.logit(&x) - manual).abs() < 1e-9);
    }

    #[test]
    fn gradient_reduces_loss_on_repeated_example(
        x in proptest::collection::vec(-1.0f64..1.0, 4..12),
        y in any::<bool>(),
    ) {
        let dim = x.len();
        let mut head = LoraHead::new(vec![0.0; dim], 0.0, 4, 16.0, 9);
        let keep = vec![true; dim];
        let yv = f64::from(y);
        let first = head.sgd_step(&x, yv, 0.3, &keep);
        let mut last = first;
        for _ in 0..50 {
            last = head.sgd_step(&x, yv, 0.3, &keep);
        }
        // Loss may plateau (zero input) but must never grow.
        prop_assert!(last <= first + 1e-9, "{last} > {first}");
    }

    #[test]
    fn ngram_features_bounded(s in "[ -~\n]{0,300}") {
        let v = finetune::feature_vector(&s);
        prop_assert_eq!(v.len(), finetune::FEATURE_DIM);
        prop_assert!(v.iter().all(|x| x.is_finite()));
        // The n-gram block is L2-normalized (or all zero).
        let norm: f64 = v[..finetune::NGRAM_DIM].iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(norm < 1.0 + 1e-9);
    }
}
