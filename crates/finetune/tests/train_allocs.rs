//! Proves the fused training loop's core claim with a counting global
//! allocator: after warmup, a training step — dropout refill, forward,
//! backward, fused Adam update, even the epoch-boundary shuffle —
//! performs **zero** heap allocations.
//!
//! Run with `cargo test -p finetune --features count-train-allocs`.
//! Counting is gated on a thread-local flag so allocations from other
//! test threads never pollute the counter; tests still serialize on a
//! mutex because the counter itself is process-global.

#![cfg(feature = "count-train-allocs")]

use finetune::{Adam, AdamConfig, LoraHead, Rng, TrainScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTER_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    static TRACKING: Cell<bool> = const { Cell::new(false) };
}

struct CountingAlloc;

fn count() {
    // `try_with`: the allocator can be called during thread teardown
    // after the TLS slot is gone.
    if TRACKING.try_with(Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn tracked<R>(f: impl FnOnce() -> R) -> (R, u64) {
    ALLOCS.store(0, Ordering::Relaxed);
    TRACKING.with(|t| t.set(true));
    let r = f();
    TRACKING.with(|t| t.set(false));
    (r, ALLOCS.load(Ordering::Relaxed))
}

#[test]
fn allocator_instrumentation_works() {
    let _guard = COUNTER_LOCK.lock().unwrap();
    let ((), n) = tracked(|| {
        let v: Vec<u64> = (0..64).collect();
        assert_eq!(v.len(), 64);
    });
    assert!(n > 0, "a fresh Vec must be counted");
}

#[test]
fn fused_training_steps_are_allocation_free_after_warmup() {
    let _guard = COUNTER_LOCK.lock().unwrap();

    // Realistic adapter shape: full feature width, paper-config rank.
    let dim = finetune::FEATURE_DIM;
    let rank = 8;
    let mut setup_rng = Rng::new(3);
    let w: Vec<f64> = (0..dim).map(|_| setup_rng.uniform() - 0.5).collect();
    let xs: Vec<Vec<f64>> = (0..32)
        .map(|_| (0..dim).map(|_| setup_rng.uniform() - 0.5).collect())
        .collect();

    let mut head = LoraHead::new(w, 0.1, rank, 16.0, 7);
    let mut opt = Adam::new(head.adapter_params(), AdamConfig { lr: 0.004, ..Default::default() });
    let mut scratch = TrainScratch::new(rank, dim);
    let mut rng = Rng::new(2024 ^ 0xF17E);
    let mut order: Vec<usize> = (0..xs.len()).collect();

    // Warmup epoch: first touches of every buffer.
    rng.shuffle(&mut order);
    for &i in &order {
        scratch.fill_mask(&mut rng, 0.1);
        head.adam_step_scratch(&xs[i], f64::from(i % 2 == 0), &mut opt, &mut scratch);
    }

    // Steady state: several full epochs, shuffles included, zero allocs.
    let ((), n) = tracked(|| {
        for _ in 0..5 {
            rng.shuffle(&mut order);
            for &i in &order {
                scratch.fill_mask(&mut rng, 0.1);
                head.adam_step_scratch(&xs[i], f64::from(i % 2 == 0), &mut opt, &mut scratch);
            }
        }
    });
    assert_eq!(n, 0, "inner training loop allocated {n} times after warmup");
}
