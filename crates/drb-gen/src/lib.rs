//! `drb-gen` — a DataRaceBench-style OpenMP microbenchmark corpus.
//!
//! The paper derives DRB-ML from DataRaceBench v1.4.1: 201 C/OpenMP
//! microbenchmarks labeled race-yes/race-no, with per-variable-pair
//! line/column/operation labels (§3.1, Table 1). DataRaceBench itself is
//! synthetic; this crate regenerates the same pattern taxonomy from
//! scratch — every kernel is honest C that parses with `minic`, runs
//! under `hbsan`, and carries machine-resolved ground-truth labels
//! (see [`spec::resolve`]: pair positions are located by re-analyzing
//! the trimmed code, never hand-counted).
//!
//! ```
//! let kernels = drb_gen::corpus();
//! assert_eq!(kernels.len(), 201);
//! let k = &kernels[0];
//! assert!(k.name.starts_with("SRB001-"));
//! assert_eq!(k.race, !k.pairs.is_empty());
//! ```

#![warn(missing_docs)]

pub mod augment;
pub mod corpus;
pub mod spec;
// Template modules build kernel lists by sequential `push` so each kernel
// can carry its own comment block; silence the vec![]-style suggestion.
#[allow(clippy::vec_init_then_push)]
pub mod templates;

pub use augment::{augment, collect_names, mutate, rename_unit, Mutation};
pub use corpus::{build, corpus, CORPUS_SIZE, NO_COUNT, YES_COUNT};
pub use spec::{Builder, Category, Kernel, Op, PairSpec, SideSpec, ToolBehavior, VarPair};
