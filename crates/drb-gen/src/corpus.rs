//! Corpus assembly: 201 kernels, DataRaceBench-style.
//!
//! The full corpus splits 101 race-yes / 100 race-no; the DRB-ML token
//! filter (applied downstream in `drb-ml`) drops the three oversized
//! kernels (1 yes, 2 no), leaving the paper's 198-entry subset at
//! 100 / 98 (§3.2, §3.5).

use crate::spec::{resolve, Builder, Kernel};
use crate::templates;
use std::sync::OnceLock;

/// Expected total corpus size.
pub const CORPUS_SIZE: usize = 201;
/// Expected race-yes count in the full corpus.
pub const YES_COUNT: usize = 101;
/// Expected race-no count in the full corpus.
pub const NO_COUNT: usize = 100;

/// Build (or fetch the cached) full corpus.
pub fn corpus() -> &'static [Kernel] {
    static CORPUS: OnceLock<Vec<Kernel>> = OnceLock::new();
    CORPUS.get_or_init(|| build().expect("corpus must assemble"))
}

/// Assemble and resolve the corpus from its builders.
pub fn build() -> Result<Vec<Kernel>, String> {
    let builders = templates::all_builders();
    let yes: Vec<&Builder> = builders.iter().filter(|b| b.race).collect();
    let no: Vec<&Builder> = builders.iter().filter(|b| !b.race).collect();
    if yes.len() != YES_COUNT {
        return Err(format!("expected {YES_COUNT} race-yes builders, found {}", yes.len()));
    }
    if no.len() != NO_COUNT {
        return Err(format!("expected {NO_COUNT} race-no builders, found {}", no.len()));
    }

    // Interleave yes/no in a stable pattern so consecutive ids mix both
    // labels, like DRB's numbering.
    let mut ordered: Vec<&Builder> = Vec::with_capacity(CORPUS_SIZE);
    let (mut yi, mut ni) = (0usize, 0usize);
    for i in 0..CORPUS_SIZE {
        let take_yes = if yi >= yes.len() {
            false
        } else if ni >= no.len() {
            true
        } else {
            i % 2 == 0
        };
        if take_yes {
            ordered.push(yes[yi]);
            yi += 1;
        } else {
            ordered.push(no[ni]);
            ni += 1;
        }
    }

    let mut kernels = Vec::with_capacity(CORPUS_SIZE);
    let mut seen_slugs = std::collections::HashSet::new();
    for (idx, b) in ordered.iter().enumerate() {
        if !seen_slugs.insert(b.slug.clone()) {
            return Err(format!("duplicate kernel slug: {}", b.slug));
        }
        kernels.push(resolve(b, idx as u32 + 1)?);
    }
    Ok(kernels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ToolBehavior;

    #[test]
    fn corpus_has_paper_counts() {
        let c = corpus();
        assert_eq!(c.len(), CORPUS_SIZE);
        assert_eq!(c.iter().filter(|k| k.race).count(), YES_COUNT);
        assert_eq!(c.iter().filter(|k| !k.race).count(), NO_COUNT);
    }

    #[test]
    fn ids_are_dense_and_names_unique() {
        let c = corpus();
        let mut names = std::collections::HashSet::new();
        for (i, k) in c.iter().enumerate() {
            assert_eq!(k.id as usize, i + 1);
            assert!(names.insert(k.name.clone()), "duplicate {}", k.name);
            assert!(k.name.starts_with(&format!("SRB{:03}-", k.id)));
            assert!(k.name.ends_with(".c"));
        }
    }

    #[test]
    fn every_kernel_parses_and_labels_are_consistent() {
        for k in corpus() {
            let unit = minic::parse(&k.trimmed_code)
                .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            assert!(!unit.items.is_empty());
            assert_eq!(k.race, !k.pairs.is_empty(), "{}", k.name);
            // Header pairs match the resolved ones.
            if k.race {
                assert!(k.code.contains("Data race pair:"), "{}", k.name);
            } else {
                assert!(k.code.contains("No data race."), "{}", k.name);
            }
        }
    }

    #[test]
    fn pair_lines_point_at_real_code() {
        for k in corpus() {
            let lines: Vec<&str> = k.trimmed_code.lines().collect();
            for p in &k.pairs {
                for (line, _col) in [(p.lines.0, p.cols.0), (p.lines.1, p.cols.1)] {
                    let l = lines
                        .get(line as usize - 1)
                        .unwrap_or_else(|| panic!("{}: line {line} out of range", k.name));
                    // The named root variable appears on that line.
                    let root: String = p
                        .names
                        .0
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    let root2: String = p
                        .names
                        .1
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    assert!(
                        l.contains(root.as_str()) || l.contains(root2.as_str()),
                        "{}: line {line} = {l:?} lacks {root}/{root2}",
                        k.name
                    );
                }
            }
        }
    }

    #[test]
    fn oversized_kernels_present() {
        let c = corpus();
        let big: Vec<_> = c.iter().filter(|k| k.name.contains("oversized")).collect();
        assert_eq!(big.len(), 3);
        assert_eq!(big.iter().filter(|k| k.race).count(), 1);
    }

    #[test]
    fn category_spread_is_wide() {
        let c = corpus();
        let cats: std::collections::HashSet<_> = c.iter().map(|k| k.category).collect();
        assert!(cats.len() >= 15, "only {} categories", cats.len());
    }

    #[test]
    fn behavior_classes_represented() {
        let c = corpus();
        assert!(c.iter().any(|k| k.behavior == ToolBehavior::EvadesStatic));
        assert!(c.iter().any(|k| k.behavior == ToolBehavior::TripsStatic));
        assert!(c.iter().any(|k| k.behavior == ToolBehavior::DynUnmodeled));
    }
}
