//! Kernel specifications and ground-truth label resolution.
//!
//! Each corpus kernel declares its racy variable pairs *symbolically*
//! (expression text + operation + occurrence index); the resolver parses
//! the comment-trimmed code and locates the matching accesses, producing
//! the exact `name@line:col:op` labels DRB-ML needs (paper §3.1: line
//! numbers refer to the trimmed code). This removes any hand-counted
//! line numbers from the corpus source — labels cannot drift from code.

use depend::access::{accesses_of_block, Access, AccessKind};
use minic::ast::Item;
use serde::{Deserialize, Serialize};

/// DRB-style pattern taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Category {
    /// Loop-carried anti-dependence (`a[i] = a[i+1]`).
    AntiDep,
    /// Loop-carried true dependence (`a[i+1] = a[i]`).
    TrueDep,
    /// Loop-carried output dependence.
    OutputDep,
    /// Unprotected shared scalar/array update (missing critical/atomic).
    MissingSync,
    /// Correct use of critical/atomic/locks.
    Sync,
    /// Reduction patterns (correct or missing).
    Reduction,
    /// Data-sharing attribute bugs (missing private etc.).
    Privatization,
    /// `nowait` / barrier structure.
    BarrierStructure,
    /// `sections` constructs.
    Sections,
    /// Explicit tasks.
    Tasks,
    /// SIMD loops.
    Simd,
    /// Indirect (index-array) accesses.
    Indirect,
    /// Stencils and multi-dimensional loops.
    Stencil,
    /// Pointer aliasing patterns.
    Aliasing,
    /// Cross-function (interprocedural) patterns.
    Interprocedural,
    /// Single/master constructs.
    OnceConstructs,
    /// Target/device-style constructs.
    Target,
    /// Input-dependent or symbolic-bound patterns.
    Symbolic,
    /// Miscellaneous control patterns.
    Control,
}

impl Category {
    /// Difficulty weight used by the surrogate LLM (higher = harder for a
    /// pattern-matching model to classify).
    pub fn difficulty(&self) -> f64 {
        match self {
            Category::AntiDep | Category::TrueDep | Category::OutputDep => 0.15,
            Category::MissingSync | Category::Sync => 0.2,
            Category::Reduction => 0.25,
            Category::Privatization => 0.35,
            Category::BarrierStructure => 0.5,
            Category::Sections => 0.3,
            Category::Tasks => 0.55,
            Category::Simd => 0.6,
            Category::Indirect => 0.7,
            Category::Stencil => 0.45,
            Category::Aliasing => 0.75,
            Category::Interprocedural => 0.6,
            Category::OnceConstructs => 0.5,
            Category::Target => 0.55,
            Category::Symbolic => 0.8,
            Category::Control => 0.4,
        }
    }

    /// Stable name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Category::AntiDep => "antidep",
            Category::TrueDep => "truedep",
            Category::OutputDep => "outputdep",
            Category::MissingSync => "missing-sync",
            Category::Sync => "sync",
            Category::Reduction => "reduction",
            Category::Privatization => "privatization",
            Category::BarrierStructure => "barrier-structure",
            Category::Sections => "sections",
            Category::Tasks => "tasks",
            Category::Simd => "simd",
            Category::Indirect => "indirect",
            Category::Stencil => "stencil",
            Category::Aliasing => "aliasing",
            Category::Interprocedural => "interprocedural",
            Category::OnceConstructs => "once-constructs",
            Category::Target => "target",
            Category::Symbolic => "symbolic",
            Category::Control => "control",
        }
    }
}

/// Read/write marker in DRB-ML style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Read.
    R,
    /// Write.
    W,
}

impl Op {
    /// DRB-ML letter (`"r"` / `"w"`).
    pub fn letter(&self) -> &'static str {
        match self {
            Op::R => "r",
            Op::W => "w",
        }
    }

    fn kind(&self) -> AccessKind {
        match self {
            Op::R => AccessKind::Read,
            Op::W => AccessKind::Write,
        }
    }
}

/// One side of a pair spec: canonical expression text (as printed by
/// `minic::printer::print_expr`), the operation, and which occurrence of
/// that (text, op) combination in program order (0-based).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SideSpec {
    /// Canonical lvalue text, e.g. `a[i + 1]`.
    pub text: String,
    /// Read or write.
    pub op: Op,
    /// 0-based occurrence index among matching accesses.
    pub occurrence: usize,
}

impl SideSpec {
    /// Convenience constructor for the first occurrence.
    pub fn new(text: impl Into<String>, op: Op) -> Self {
        SideSpec { text: text.into(), op, occurrence: 0 }
    }

    /// Constructor selecting a later occurrence.
    pub fn nth(text: impl Into<String>, op: Op, occurrence: usize) -> Self {
        SideSpec { text: text.into(), op, occurrence }
    }
}

/// A symbolic racy-pair declaration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairSpec {
    /// The dependence source side (VAR0 in DRB-ML: the side VAR1 depends
    /// on).
    pub first: SideSpec,
    /// The dependent side.
    pub second: SideSpec,
}

/// A fully-resolved variable pair with trimmed-code coordinates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarPair {
    /// Lvalue texts.
    pub names: (String, String),
    /// 1-based lines in the trimmed code.
    pub lines: (u32, u32),
    /// 1-based columns in the trimmed code.
    pub cols: (u32, u32),
    /// Operations.
    pub ops: (Op, Op),
}

impl VarPair {
    /// DRB-comment style: `a[i+1]@64:10:R vs. a[i]@64:5:W`.
    pub fn describe(&self) -> String {
        format!(
            "{}@{}:{}:{} vs. {}@{}:{}:{}",
            self.names.0,
            self.lines.0,
            self.cols.0,
            self.ops.0.letter().to_uppercase(),
            self.names.1,
            self.lines.1,
            self.cols.1,
            self.ops.1.letter().to_uppercase()
        )
    }
}

/// How a kernel interacts with the detectors (used to build the
/// adversarial subset that keeps the baseline imperfect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ToolBehavior {
    /// Both static and dynamic analysis get this right.
    Standard,
    /// Static analysis misses the race (false negative by design).
    EvadesStatic,
    /// Static analysis reports a race that is not there (false positive
    /// by design — e.g. runtime-disjoint indirect indices).
    TripsStatic,
    /// The dynamic checker cannot model this kernel faithfully (e.g.
    /// SIMD lane conflicts); exclude it from hbsan ground-truth
    /// validation.
    DynUnmodeled,
}

/// A kernel before label resolution.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Name slug, e.g. `antidep1-orig-yes`.
    pub slug: String,
    /// Pattern category.
    pub category: Category,
    /// One-line description for the header comment.
    pub description: String,
    /// Source code without the header comment.
    pub body: String,
    /// Ground truth: does a data race exist?
    pub race: bool,
    /// Symbolic racy pairs (empty iff `race == false`).
    pub pairs: Vec<PairSpec>,
    /// Detector interaction class.
    pub behavior: ToolBehavior,
}

impl Builder {
    /// Convenience constructor.
    pub fn new(
        slug: &str,
        category: Category,
        description: &str,
        body: &str,
        race: bool,
        pairs: Vec<PairSpec>,
    ) -> Self {
        Builder {
            slug: slug.to_string(),
            category,
            description: description.to_string(),
            body: body.trim_start_matches('\n').to_string(),
            race,
            pairs,
            behavior: ToolBehavior::Standard,
        }
    }

    /// Mark the detector-interaction class.
    pub fn behavior(mut self, b: ToolBehavior) -> Self {
        self.behavior = b;
        self
    }
}

/// A finished corpus kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Kernel {
    /// 1-based corpus index.
    pub id: u32,
    /// Filename-style name, e.g. `SRB001-antidep1-orig-yes.c`.
    pub name: String,
    /// Pattern category.
    pub category: Category,
    /// One-line description.
    pub description: String,
    /// Full source including the DRB-style header comment.
    pub code: String,
    /// Source with comments removed (what DRB-ML labels refer to).
    pub trimmed_code: String,
    /// Ground truth: race present?
    pub race: bool,
    /// Resolved variable pairs (trimmed-code coordinates).
    pub pairs: Vec<VarPair>,
    /// Detector interaction class.
    #[serde(skip, default = "default_behavior")]
    pub behavior: ToolBehavior,
}

fn default_behavior() -> ToolBehavior {
    ToolBehavior::Standard
}

impl Kernel {
    /// DRB-style race label (`Y1`..`Y7`/`N1`.. buckets collapse to Y/N
    /// plus category).
    pub fn race_label(&self) -> String {
        if self.race {
            format!("Y-{}", self.category.as_str())
        } else {
            format!("N-{}", self.category.as_str())
        }
    }
}

/// Resolve a builder into a kernel: trim, locate pairs, attach header.
pub fn resolve(builder: &Builder, id: u32) -> Result<Kernel, String> {
    let body = builder.body.trim_start().to_string();
    // The body contains no comments by construction, so the trimmed code
    // equals the body (verified here) and all labels refer to it.
    let trimmed = minic::trim_comments(&body);
    let unit = minic::parse(&trimmed.code)
        .map_err(|e| format!("{}: parse error: {e}\n{}", builder.slug, trimmed.code))?;

    // Collect every access in program order, across all functions.
    let mut accesses: Vec<Access> = Vec::new();
    for item in &unit.items {
        if let Item::Func(f) = item {
            accesses.extend(accesses_of_block(&f.body));
        }
    }

    let mut pairs = Vec::new();
    for spec in &builder.pairs {
        let a = find_access(&accesses, &spec.first)
            .ok_or_else(|| format!("{}: no access matching {:?}", builder.slug, spec.first))?;
        let b = find_access(&accesses, &spec.second)
            .ok_or_else(|| format!("{}: no access matching {:?}", builder.slug, spec.second))?;
        pairs.push(VarPair {
            names: (a.text.clone(), b.text.clone()),
            lines: (a.span.line(), b.span.line()),
            cols: (a.span.col(), b.span.col()),
            ops: (spec.first.op, spec.second.op),
        });
    }

    if builder.race && pairs.is_empty() {
        return Err(format!("{}: race-yes kernel without pairs", builder.slug));
    }
    if !builder.race && !pairs.is_empty() {
        return Err(format!("{}: race-no kernel with pairs", builder.slug));
    }

    // Header comment in DataRaceBench style. Pair labels in the header
    // use trimmed-code coordinates (the header itself is a comment and
    // does not shift them).
    let mut header = String::new();
    header.push_str("/*\n");
    header.push_str(&format!("{}\n", builder.description));
    if builder.race {
        for p in &pairs {
            header.push_str(&format!("Data race pair: {}\n", p.describe()));
        }
    } else {
        header.push_str("No data race.\n");
    }
    header.push_str("*/\n");
    let code = format!("{header}{body}");

    let name = format!("SRB{id:03}-{}.c", builder.slug);
    Ok(Kernel {
        id,
        name,
        category: builder.category,
        description: builder.description.clone(),
        code,
        trimmed_code: trimmed.code,
        race: builder.race,
        pairs,
        behavior: builder.behavior,
    })
}

fn find_access<'a>(accesses: &'a [Access], spec: &SideSpec) -> Option<&'a Access> {
    accesses
        .iter()
        .filter(|a| a.kind == spec.op.kind() && a.text == spec.text)
        .nth(spec.occurrence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_antidep_pair() {
        let b = Builder::new(
            "antidep-test-yes",
            Category::AntiDep,
            "A loop with loop-carried anti-dependence.",
            r#"
int a[1000];
int main()
{
  int i;
  int len = 1000;
  for (i = 0; i < len; i++)
    a[i] = i;
  #pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i] = a[i + 1] + 1;
  return 0;
}
"#,
            true,
            vec![PairSpec {
                first: SideSpec::new("a[i + 1]", Op::R),
                second: SideSpec::nth("a[i]", Op::W, 1),
            }],
        );
        let k = resolve(&b, 1).unwrap();
        assert_eq!(k.name, "SRB001-antidep-test-yes.c");
        assert_eq!(k.pairs.len(), 1);
        let p = &k.pairs[0];
        assert_eq!(p.names.0, "a[i + 1]");
        assert_eq!(p.names.1, "a[i]");
        // Both on the same line of the trimmed code (line 10).
        assert_eq!(p.lines.0, p.lines.1);
        assert!(k.code.starts_with("/*"));
        assert!(k.code.contains("Data race pair: a[i + 1]@"));
        // Trimmed code contains no comments.
        assert!(!k.trimmed_code.contains("/*"));
    }

    #[test]
    fn rejects_inconsistent_labels() {
        let b = Builder::new(
            "bad",
            Category::AntiDep,
            "desc",
            "int main() { return 0; }",
            true,
            vec![],
        );
        assert!(resolve(&b, 1).is_err());
    }

    #[test]
    fn rejects_missing_access() {
        let b = Builder::new(
            "bad2",
            Category::AntiDep,
            "desc",
            "int main() { return 0; }",
            true,
            vec![PairSpec {
                first: SideSpec::new("zz", Op::R),
                second: SideSpec::new("zz", Op::W),
            }],
        );
        assert!(resolve(&b, 1).is_err());
    }
}
