//! Data-sharing attribute kernels: missing privatization, correct
//! private/firstprivate/lastprivate/threadprivate (DRB's `privatemissing*`,
//! `lastprivate*`, `firstprivate*`, `threadprivate*` families).

use crate::spec::{Builder, Category, Op, PairSpec, SideSpec};

fn sp(name: &str, op1: Op, occ1: usize, op2: Op, occ2: usize) -> PairSpec {
    PairSpec { first: SideSpec::nth(name, op1, occ1), second: SideSpec::nth(name, op2, occ2) }
}

/// All privatization-family kernels.
pub fn kernels() -> Vec<Builder> {
    let mut v = Vec::new();

    // Missing private on a temporary.
    for (tag, n) in [("orig", 100), ("var1", 400)] {
        v.push(Builder::new(
            &format!("privatemissing-{tag}-yes"),
            Category::Privatization,
            "Shared temporary reused by every iteration; needs private(tmp).",
            &format!(
                r#"
int main(void)
{{
  int i;
  double tmp;
  double a[{n}];
  double b[{n}];
  for (int k = 0; k < {n}; k++)
    a[k] = k * 0.5;
  #pragma omp parallel for
  for (i = 0; i < {n}; i++) {{
    tmp = a[i] * 2.0;
    b[i] = tmp + 1.0;
  }}
  return 0;
}}
"#
            ),
            true,
            vec![sp("tmp", Op::W, 0, Op::R, 0)],
        ));
    }

    // Correct private clause.
    v.push(Builder::new(
        "private1-orig-no",
        Category::Privatization,
        "The temporary is correctly privatized.",
        r#"
int main(void)
{
  int i;
  double tmp;
  double a[100];
  double b[100];
  for (int k = 0; k < 100; k++)
    a[k] = k * 0.5;
  #pragma omp parallel for private(tmp)
  for (i = 0; i < 100; i++) {
    tmp = a[i] * 2.0;
    b[i] = tmp + 1.0;
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Block-scope local: implicitly private, race-free.
    v.push(Builder::new(
        "private-blockscope-no",
        Category::Privatization,
        "The temporary is declared inside the loop body, hence private.",
        r#"
int main(void)
{
  int i;
  double a[100];
  double b[100];
  for (int k = 0; k < 100; k++)
    a[k] = k * 0.5;
  #pragma omp parallel for
  for (i = 0; i < 100; i++) {
    double tmp = a[i] * 2.0;
    b[i] = tmp + 1.0;
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Missing private on inner sequential loop index (classic DRB bug).
    v.push(Builder::new(
        "privatemissing-innerindex-yes",
        Category::Privatization,
        "Inner sequential loop index j is shared; every thread increments it.",
        r#"
int main(void)
{
  int i, j;
  double m[30][30];
  for (int k = 0; k < 30; k++)
    for (int p = 0; p < 30; p++)
      m[k][p] = 1.0;
  #pragma omp parallel for
  for (i = 0; i < 30; i++)
    for (j = 0; j < 30; j++)
      m[i][j] = m[i][j] * 0.5;
  return 0;
}
"#,
        true,
        vec![sp("j", Op::W, 0, Op::R, 0)],
    ));

    // The corrected version with private(j).
    v.push(Builder::new(
        "private-innerindex-no",
        Category::Privatization,
        "Inner loop index privatized via private(j).",
        r#"
int main(void)
{
  int i, j;
  double m[30][30];
  for (int k = 0; k < 30; k++)
    for (int p = 0; p < 30; p++)
      m[k][p] = 1.0;
  #pragma omp parallel for private(j)
  for (i = 0; i < 30; i++)
    for (j = 0; j < 30; j++)
      m[i][j] = m[i][j] * 0.5;
  return 0;
}
"#,
        false,
        vec![],
    ));

    // firstprivate correct.
    v.push(Builder::new(
        "firstprivate-orig-no",
        Category::Privatization,
        "A read-mostly scalar captured by firstprivate.",
        r#"
int main(void)
{
  int i;
  double scale;
  double a[200];
  scale = 2.5;
  for (int k = 0; k < 200; k++)
    a[k] = k;
  #pragma omp parallel for firstprivate(scale)
  for (i = 0; i < 200; i++)
    a[i] = a[i] * scale;
  return 0;
}
"#,
        false,
        vec![],
    ));

    // lastprivate correct.
    v.push(Builder::new(
        "lastprivate-orig-no",
        Category::Privatization,
        "Loop-final value communicated via lastprivate.",
        r#"
int main(void)
{
  int i;
  double x;
  double a[120];
  for (int k = 0; k < 120; k++)
    a[k] = k * 0.5;
  x = 0.0;
  #pragma omp parallel for lastprivate(x)
  for (i = 0; i < 120; i++)
    x = a[i];
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Shared scalar written, needed lastprivate.
    v.push(Builder::new(
        "lastprivatemissing-yes",
        Category::Privatization,
        "The loop-final idiom without lastprivate: shared x written by all threads.",
        r#"
int main(void)
{
  int i;
  double x;
  double a[120];
  for (int k = 0; k < 120; k++)
    a[k] = k * 0.5;
  x = 0.0;
  #pragma omp parallel for
  for (i = 0; i < 120; i++)
    x = a[i];
  return 0;
}
"#,
        true,
        vec![sp("x", Op::W, 1, Op::W, 1)],
    ));

    // threadprivate correct.
    v.push(Builder::new(
        "threadprivate-orig-no",
        Category::Privatization,
        "A global counter declared threadprivate: per-thread copies.",
        r#"
int tally;
#pragma omp threadprivate(tally)
int main(void)
{
  #pragma omp parallel
  {
    tally = tally + 1;
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // The same global without threadprivate.
    v.push(Builder::new(
        "threadprivatemissing-yes",
        Category::Privatization,
        "A global counter updated by all threads; threadprivate (or atomic) is missing.",
        r#"
int tally;
int main(void)
{
  tally = 0;
  #pragma omp parallel
  {
    tally = tally + 1;
  }
  return 0;
}
"#,
        true,
        vec![sp("tally", Op::R, 0, Op::W, 1)],
    ));

    // Induction variable of the worksharing loop written in the body —
    // but it is implicitly private, so this is race-free.
    v.push(Builder::new(
        "inductionwrite-no",
        Category::Privatization,
        "The worksharing induction variable is implicitly private even when read in the body.",
        r#"
int main(void)
{
  int i;
  int a[64];
  #pragma omp parallel for
  for (i = 0; i < 64; i++)
    a[i] = i * i;
  return 0;
}
"#,
        false,
        vec![],
    ));

    // firstprivate on an array (copies whole array per thread).
    v.push(Builder::new(
        "firstprivate-array-no",
        Category::Privatization,
        "A small lookup table captured firstprivate; threads write private copies.",
        r#"
int main(void)
{
  int i;
  int lut[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  int out[64];
  #pragma omp parallel for firstprivate(lut)
  for (i = 0; i < 64; i++) {
    lut[i % 8] = lut[i % 8] + 1;
    out[i] = lut[i % 8];
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Shared small table written concurrently (the racy version).
    v.push(Builder::new(
        "sharedtable-yes",
        Category::Privatization,
        "A shared lookup table mutated by every iteration through a modulo index.",
        r#"
int main(void)
{
  int i;
  int lut[8];
  int out[64];
  for (int k = 0; k < 8; k++)
    lut[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 64; i++) {
    lut[i % 8] = lut[i % 8] + 1;
    out[i] = lut[i % 8];
  }
  return 0;
}
"#,
        true,
        vec![sp("lut[i % 8]", Op::R, 0, Op::W, 0)],
    ));

    v
}
