//! Adversarial kernels: pointer aliasing, interprocedural patterns,
//! symbolic bounds, control-dependent races. These are the kernels that
//! keep the traditional baseline imperfect (paper Table 3: Inspector has
//! 44 FPs and 11 FNs on DataRaceBench).

use crate::spec::{Builder, Category, Op, PairSpec, SideSpec, ToolBehavior};

fn sp(a: (&str, Op, usize), b: (&str, Op, usize)) -> PairSpec {
    PairSpec { first: SideSpec::nth(a.0, a.1, a.2), second: SideSpec::nth(b.0, b.1, b.2) }
}

/// All adversarial kernels.
pub fn kernels() -> Vec<Builder> {
    let mut v = Vec::new();

    // Aliasing: p aliases a; the name-based static analysis misses it.
    v.push(Builder::new(
        "alias-antidep-yes",
        Category::Aliasing,
        "An alias pointer hides the anti-dependence from name-based analysis.",
        r#"
int a[128];
int main(void)
{
  int i;
  int* p;
  p = a;
  for (int k = 0; k < 128; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 127; i++)
    a[i] = p[i + 1] + 1;
  return 0;
}
"#,
        true,
        vec![sp(("p[i + 1]", Op::R, 0), ("a[i]", Op::W, 0))],
    ).behavior(ToolBehavior::EvadesStatic));

    // Aliasing through an offset pointer.
    v.push(Builder::new(
        "alias-offset-yes",
        Category::Aliasing,
        "A pointer offset into the same array shifts the write window onto the reads.",
        r#"
double buf[200];
int main(void)
{
  int i;
  double* q;
  q = buf + 1;
  for (int k = 0; k < 200; k++)
    buf[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 199; i++)
    q[i] = buf[i] * 2.0;
  return 0;
}
"#,
        true,
        vec![sp(("buf[i]", Op::R, 0), ("q[i]", Op::W, 0))],
    ).behavior(ToolBehavior::EvadesStatic));

    // Two pointers into provably different arrays: race-free, but the
    // detector cannot know `p` and `a` are unrelated? It assumes names
    // are distinct, so it stays silent — correct by luck, standard here.
    v.push(Builder::new(
        "alias-distinct-no",
        Category::Aliasing,
        "Pointers into two distinct arrays: the windows are disjoint.",
        r#"
double src[128];
double dst[128];
int main(void)
{
  int i;
  double* p;
  p = dst;
  for (int k = 0; k < 128; k++)
    src[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 128; i++)
    p[i] = src[i] + 1.0;
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Interprocedural: racy update hidden in a callee.
    v.push(Builder::new(
        "interproc-hidden-yes",
        Category::Interprocedural,
        "The racy shared update happens inside a helper function.",
        r#"
int total;
void bump(int amount)
{
  total = total + amount;
}
int main(void)
{
  int i;
  total = 0;
  #pragma omp parallel for
  for (i = 0; i < 64; i++)
    bump(i);
  return total;
}
"#,
        true,
        vec![sp(("total", Op::R, 0), ("total", Op::W, 0))],
    ));

    // Interprocedural, correct: callee writes caller-disjoint slots.
    v.push(Builder::new(
        "interproc-disjoint-no",
        Category::Interprocedural,
        "The helper writes one distinct element per call.",
        r#"
int table[64];
void put(int i, int value)
{
  table[i] = value;
}
int main(void)
{
  int i;
  #pragma omp parallel for
  for (i = 0; i < 64; i++)
    put(i, i * 3);
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Two levels of calls.
    v.push(Builder::new(
        "interproc-deep-yes",
        Category::Interprocedural,
        "The race hides two call levels down.",
        r#"
double norm;
void add(double x)
{
  norm = norm + x;
}
void accumulate(double x)
{
  add(x);
}
int main(void)
{
  int i;
  double a[96];
  for (int k = 0; k < 96; k++)
    a[k] = k * 0.5;
  norm = 0.0;
  #pragma omp parallel for
  for (i = 0; i < 96; i++)
    accumulate(a[i]);
  return 0;
}
"#,
        true,
        vec![sp(("norm", Op::R, 0), ("norm", Op::W, 0))],
    )
    // The argument `a[i]` is too complex for the conservative inliner,
    // so the static path never sees the callee's accesses.
    .behavior(ToolBehavior::EvadesStatic));

    // Symbolic bound: the gap between write and read windows depends on
    // an input-like value; statically unknowable. Chosen so the windows
    // are disjoint at runtime: static tools over-report.
    v.push(Builder::new(
        "symbolic-disjoint-no",
        Category::Symbolic,
        "Write window [0,half) and read window [half,n): disjoint, but the split is symbolic.",
        r#"
int main(int argc, char* argv[])
{
  int i;
  int n = 128;
  int half = n / 2 + argc - 1;
  double a[128];
  for (int k = 0; k < 128; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 64; i++)
    a[i] = a[i + half] * 0.5;
  return 0;
}
"#,
        false,
        vec![],
    ).behavior(ToolBehavior::TripsStatic));

    // Symbolic bound that actually overlaps.
    v.push(Builder::new(
        "symbolic-overlap-yes",
        Category::Symbolic,
        "The symbolic offset lands the read window inside the write window.",
        r#"
int main(int argc, char* argv[])
{
  int i;
  int off = argc;
  double a[128];
  for (int k = 0; k < 128; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 120; i++)
    a[i] = a[i + off] * 0.5;
  return 0;
}
"#,
        true,
        vec![sp(("a[i + off]", Op::R, 0), ("a[i]", Op::W, 0))],
    ));

    // Control-dependent race: triggered only when data says so (it does).
    v.push(Builder::new(
        "control-datadep-yes",
        Category::Control,
        "The conflicting write fires under a data-dependent branch that is taken.",
        r#"
int flagged;
int main(void)
{
  int i;
  int d[100];
  for (int k = 0; k < 100; k++)
    d[k] = k % 10;
  flagged = -1;
  #pragma omp parallel for
  for (i = 0; i < 100; i++)
    if (d[i] == 3)
      flagged = i;
  return flagged;
}
"#,
        true,
        vec![sp(("flagged", Op::W, 1), ("flagged", Op::W, 1))],
    ));

    // Control-dependent but never triggered: statically looks racy.
    v.push(Builder::new(
        "control-deadbranch-no",
        Category::Control,
        "The conflicting write sits in a branch the data never takes.",
        r#"
int flagged;
int main(void)
{
  int i;
  int d[100];
  for (int k = 0; k < 100; k++)
    d[k] = k % 10;
  flagged = -1;
  #pragma omp parallel for
  for (i = 0; i < 100; i++)
    if (d[i] == 15)
      flagged = i;
  return flagged;
}
"#,
        false,
        vec![],
    ).behavior(ToolBehavior::TripsStatic));

    // A single write guarded to exactly one iteration: one writer only.
    v.push(Builder::new(
        "control-singlewriter-no",
        Category::Control,
        "Exactly one iteration writes the scalar: no concurrent writers.",
        r#"
int picked;
int main(void)
{
  int i;
  double a[64];
  for (int k = 0; k < 64; k++)
    a[k] = k;
  picked = 0;
  #pragma omp parallel for
  for (i = 0; i < 64; i++)
    if (i == 31)
      picked = i;
  return picked;
}
"#,
        false,
        vec![],
    ).behavior(ToolBehavior::TripsStatic));

    // Guarded by thread id: still a race between writer and readers.
    v.push(Builder::new(
        "control-tidguard-yes",
        Category::Control,
        "Thread 0 writes while other threads read, with no barrier.",
        r#"
int shared_v;
int sink[16];
int main(void)
{
  shared_v = 0;
  #pragma omp parallel
  {
    if (omp_get_thread_num() == 0)
      shared_v = 11;
    else
      sink[omp_get_thread_num()] = shared_v;
  }
  return 0;
}
"#,
        true,
        vec![sp(("shared_v", Op::W, 1), ("shared_v", Op::R, 0))],
    ));

    // if-clause disables parallelism: serial, race-free despite pattern.
    v.push(Builder::new(
        "ifclause-serial-no",
        Category::Control,
        "if(0) on the parallel directive forces serial execution of a racy-looking loop.",
        r#"
int main(void)
{
  int i;
  int a[64];
  for (int k = 0; k < 64; k++)
    a[k] = k;
  #pragma omp parallel for if(0)
  for (i = 0; i < 63; i++)
    a[i] = a[i + 1];
  return 0;
}
"#,
        false,
        vec![],
    ));

    // num_threads(1): same story.
    v.push(Builder::new(
        "numthreads1-no",
        Category::Control,
        "num_threads(1) makes the team a single thread; the recurrence is sequential.",
        r#"
int main(void)
{
  int i;
  int a[64];
  for (int k = 0; k < 64; k++)
    a[k] = k;
  #pragma omp parallel for num_threads(1)
  for (i = 0; i < 63; i++)
    a[i] = a[i + 1];
  return 0;
}
"#,
        false,
        vec![],
    ));

    v
}
