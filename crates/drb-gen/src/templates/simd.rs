//! SIMD and indirect-access kernels (DRB's `simd*`, `indirectaccess*`
//! families). SIMD lane conflicts are not modeled by the dynamic
//! checker (they are single-thread vectorization hazards), so the yes
//! kernels are marked [`ToolBehavior::DynUnmodeled`].

use crate::spec::{Builder, Category, Op, PairSpec, SideSpec, ToolBehavior};

fn sp(a: (&str, Op, usize), b: (&str, Op, usize)) -> PairSpec {
    PairSpec { first: SideSpec::nth(a.0, a.1, a.2), second: SideSpec::nth(b.0, b.1, b.2) }
}

/// All SIMD/indirect kernels.
pub fn kernels() -> Vec<Builder> {
    let mut v = Vec::new();

    // SIMD loop with a true dependence across lanes.
    v.push(Builder::new(
        "simd-truedep-yes",
        Category::Simd,
        "simd loop with a lane-carried true dependence a[i+1] = a[i].",
        r#"
int main(void)
{
  int i;
  double a[128];
  for (int k = 0; k < 128; k++)
    a[k] = k;
  #pragma omp simd
  for (i = 0; i < 127; i++)
    a[i + 1] = a[i] + 1.0;
  return 0;
}
"#,
        true,
        vec![sp(("a[i]", Op::R, 0), ("a[i + 1]", Op::W, 0))],
    ).behavior(ToolBehavior::DynUnmodeled));

    // SIMD with safelen respected: gap >= safelen.
    v.push(Builder::new(
        "simd-safelen-no",
        Category::Simd,
        "simd loop with safelen(8) and dependence distance 16: lanes never overlap.",
        r#"
int main(void)
{
  int i;
  double a[160];
  for (int k = 0; k < 160; k++)
    a[k] = k;
  #pragma omp simd safelen(8)
  for (i = 0; i < 144; i++)
    a[i + 16] = a[i] * 0.5;
  return 0;
}
"#,
        false,
        vec![],
    ).behavior(ToolBehavior::DynUnmodeled));

    // SIMD with safelen violated.
    v.push(Builder::new(
        "simd-safelen-violated-yes",
        Category::Simd,
        "safelen(16) declared but the dependence distance is 4: lanes conflict.",
        r#"
int main(void)
{
  int i;
  double a[160];
  for (int k = 0; k < 160; k++)
    a[k] = k;
  #pragma omp simd safelen(16)
  for (i = 0; i < 156; i++)
    a[i + 4] = a[i] * 0.5;
  return 0;
}
"#,
        true,
        vec![sp(("a[i]", Op::R, 0), ("a[i + 4]", Op::W, 0))],
    ).behavior(ToolBehavior::DynUnmodeled));

    // Clean elementwise SIMD.
    v.push(Builder::new(
        "simd-elementwise-no",
        Category::Simd,
        "Elementwise simd arithmetic with no cross-lane dependence.",
        r#"
int main(void)
{
  int i;
  double x[256];
  double y[256];
  for (int k = 0; k < 256; k++)
    x[k] = k * 0.25;
  #pragma omp simd
  for (i = 0; i < 256; i++)
    y[i] = x[i] * x[i];
  return 0;
}
"#,
        false,
        vec![],
    ));

    // parallel for simd combining both hazards.
    v.push(Builder::new(
        "parallelforsimd-truedep-yes",
        Category::Simd,
        "Combined parallel for simd over a recurrence: racy at both levels.",
        r#"
int main(void)
{
  int i;
  float w[512];
  for (int k = 0; k < 512; k++)
    w[k] = 1.0f;
  #pragma omp parallel for simd
  for (i = 0; i < 511; i++)
    w[i + 1] = w[i] + 1.0f;
  return 0;
}
"#,
        true,
        vec![sp(("w[i]", Op::R, 0), ("w[i + 1]", Op::W, 0))],
    ));

    // ---- Indirect accesses ----

    // Index array with duplicate targets: a genuine runtime collision.
    v.push(Builder::new(
        "indirectaccess-collide-yes",
        Category::Indirect,
        "a[idx[i]] where idx maps iteration pairs (i, i+32) to one element: distant iterations collide.",
        r#"
int main(void)
{
  int i;
  int idx[64];
  double a[64];
  for (int k = 0; k < 64; k++) {
    idx[k] = k % 32;
    a[k] = k;
  }
  #pragma omp parallel for
  for (i = 0; i < 64; i++)
    a[idx[i]] = a[idx[i]] + 1.0;
  return 0;
}
"#,
        true,
        vec![sp(("a[idx[i]]", Op::R, 0), ("a[idx[i]]", Op::W, 0))],
    ));

    // Index array that is a permutation: runtime-disjoint, but a static
    // tool cannot prove it.
    v.push(Builder::new(
        "indirectaccess-permutation-no",
        Category::Indirect,
        "a[idx[i]] where idx is a permutation: each element written once.",
        r#"
int main(void)
{
  int i;
  int idx[64];
  double a[64];
  for (int k = 0; k < 64; k++) {
    idx[k] = (k * 37 + 11) % 64;
    a[k] = k;
  }
  #pragma omp parallel for
  for (i = 0; i < 64; i++)
    a[idx[i]] = a[idx[i]] + 1.0;
  return 0;
}
"#,
        false,
        vec![],
    ).behavior(ToolBehavior::TripsStatic));

    // Histogram: modulo binning, collisions certain.
    v.push(Builder::new(
        "histogram-yes",
        Category::Indirect,
        "Histogram binning without atomics: concurrent increments of shared bins.",
        r#"
int main(void)
{
  int i;
  int bins[16];
  int data[256];
  for (int k = 0; k < 16; k++)
    bins[k] = 0;
  for (int m = 0; m < 256; m++)
    data[m] = m * 7;
  #pragma omp parallel for
  for (i = 0; i < 256; i++)
    bins[data[i] % 16] = bins[data[i] % 16] + 1;
  return 0;
}
"#,
        true,
        vec![sp(("bins[data[i] % 16]", Op::R, 0), ("bins[data[i] % 16]", Op::W, 0))],
    ));

    // Histogram fixed with atomic.
    v.push(Builder::new(
        "histogram-atomic-no",
        Category::Indirect,
        "Histogram binning with omp atomic on the increment.",
        r#"
int main(void)
{
  int i;
  int bins[16];
  int data[256];
  for (int k = 0; k < 16; k++)
    bins[k] = 0;
  for (int m = 0; m < 256; m++)
    data[m] = m * 7;
  #pragma omp parallel for
  for (i = 0; i < 256; i++) {
    #pragma omp atomic
    bins[data[i] % 16] += 1;
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Indirect write with disjoint strided targets — provably fine at
    // runtime, opaque statically.
    v.push(Builder::new(
        "indirect-strided-no",
        Category::Indirect,
        "Indirect store through idx[i] = 2*i+1 (odd slots only, one writer each).",
        r#"
int main(void)
{
  int i;
  int idx[32];
  double a[64];
  for (int k = 0; k < 32; k++)
    idx[k] = 2 * k + 1;
  for (int m = 0; m < 64; m++)
    a[m] = 0.0;
  #pragma omp parallel for
  for (i = 0; i < 32; i++)
    a[idx[i]] = i;
  return 0;
}
"#,
        false,
        vec![],
    ).behavior(ToolBehavior::TripsStatic));

    v
}
