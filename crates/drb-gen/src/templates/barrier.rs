//! Barrier-structure and once-construct kernels: nowait misuse, missing
//! barriers, master/single patterns (DRB's `nowait*`, `barrier*`,
//! `master*`, `single*` families).

use crate::spec::{Builder, Category, Op, PairSpec, SideSpec, ToolBehavior};

fn sp(a: (&str, Op, usize), b: (&str, Op, usize)) -> PairSpec {
    PairSpec { first: SideSpec::nth(a.0, a.1, a.2), second: SideSpec::nth(b.0, b.1, b.2) }
}

/// All barrier-structure kernels.
pub fn kernels() -> Vec<Builder> {
    let mut v = Vec::new();

    // nowait misuse: second loop reads across chunk boundaries.
    v.push(Builder::new(
        "nowait-orig-yes",
        Category::BarrierStructure,
        "A nowait worksharing loop followed by a loop reading neighbours: the removed barrier exposes a race.",
        r#"
int main(void)
{
  int i, j;
  int a[128];
  int b[128];
  for (int k = 0; k < 128; k++)
    a[k] = k;
  #pragma omp parallel
  {
    #pragma omp for nowait
    for (i = 0; i < 128; i++)
      a[i] = a[i] + 1;
    #pragma omp for
    for (j = 0; j < 127; j++)
      b[j] = a[j + 1];
  }
  return 0;
}
"#,
        true,
        vec![sp(("a[i]", Op::W, 0), ("a[j + 1]", Op::R, 0))],
    ));

    // Correct: implicit barrier retained.
    v.push(Builder::new(
        "nowait-removed-no",
        Category::BarrierStructure,
        "Identical loops with the implicit barrier kept: no race.",
        r#"
int main(void)
{
  int i, j;
  int a[128];
  int b[128];
  for (int k = 0; k < 128; k++)
    a[k] = k;
  #pragma omp parallel
  {
    #pragma omp for
    for (i = 0; i < 128; i++)
      a[i] = a[i] + 1;
    #pragma omp for
    for (j = 0; j < 127; j++)
      b[j] = a[j + 1];
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Benign nowait: disjoint arrays.
    v.push(Builder::new(
        "nowait-disjoint-no",
        Category::BarrierStructure,
        "nowait between loops touching disjoint arrays is safe.",
        r#"
int main(void)
{
  int i, j;
  int a[96];
  int b[96];
  #pragma omp parallel
  {
    #pragma omp for nowait
    for (i = 0; i < 96; i++)
      a[i] = i;
    #pragma omp for
    for (j = 0; j < 96; j++)
      b[j] = j * 2;
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Master init without a barrier before use.
    v.push(Builder::new(
        "mastermissingbarrier-yes",
        Category::OnceConstructs,
        "master initializes shared data; other threads read it with no barrier in between.",
        r#"
int init;
int out[16];
int main(void)
{
  init = 0;
  #pragma omp parallel
  {
    #pragma omp master
    {
      init = 42;
    }
    out[omp_get_thread_num()] = init;
  }
  return 0;
}
"#,
        true,
        vec![sp(("init", Op::W, 1), ("init", Op::R, 0))],
    ));

    // The fixed version with an explicit barrier.
    v.push(Builder::new(
        "masterbarrier-no",
        Category::OnceConstructs,
        "master initialization published through an explicit barrier.",
        r#"
int init;
int out[16];
int main(void)
{
  init = 0;
  #pragma omp parallel
  {
    #pragma omp master
    {
      init = 42;
    }
    #pragma omp barrier
    out[omp_get_thread_num()] = init;
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // single (with its implicit barrier) is already safe.
    v.push(Builder::new(
        "singleinit-no",
        Category::OnceConstructs,
        "single initializes shared data; its implicit barrier publishes it.",
        r#"
int init;
int out[16];
int main(void)
{
  init = 0;
  #pragma omp parallel
  {
    #pragma omp single
    {
      init = 7;
    }
    out[omp_get_thread_num()] = init;
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // single nowait removes that protection.
    v.push(Builder::new(
        "singlenowait-yes",
        Category::OnceConstructs,
        "single nowait: the initialization is no longer ordered before the reads.",
        r#"
int init;
int out[16];
int main(void)
{
  init = 0;
  #pragma omp parallel
  {
    #pragma omp single nowait
    {
      init = 7;
    }
    out[omp_get_thread_num()] = init;
  }
  return 0;
}
"#,
        true,
        vec![sp(("init", Op::W, 1), ("init", Op::R, 0))],
    ));

    // Explicit barrier splitting two phases over the same array.
    v.push(Builder::new(
        "barrierphases-no",
        Category::BarrierStructure,
        "Replicated writes to per-thread slots, barrier, then neighbour reads.",
        r#"
int stage[16];
int out[16];
int main(void)
{
  #pragma omp parallel num_threads(8)
  {
    int me;
    me = omp_get_thread_num();
    stage[me] = me * 10;
    #pragma omp barrier
    out[me] = stage[(me + 1) % 8];
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Same pattern without the barrier.
    v.push(Builder::new(
        "barriermissing-yes",
        Category::BarrierStructure,
        "Neighbour reads without the separating barrier race with the writes.",
        r#"
int stage[16];
int out[16];
int main(void)
{
  #pragma omp parallel num_threads(8)
  {
    int me;
    me = omp_get_thread_num();
    stage[me] = me * 10;
    out[me] = stage[(me + 1) % 8];
  }
  return 0;
}
"#,
        true,
        vec![sp(("stage[me]", Op::W, 0), ("stage[(me + 1) % 8]", Op::R, 0))],
    ));

    // Two single constructs back to back (barriers order them).
    v.push(Builder::new(
        "singletwice-no",
        Category::OnceConstructs,
        "Two single constructs; the first's implicit barrier orders the second.",
        r#"
int x;
int main(void)
{
  x = 0;
  #pragma omp parallel
  {
    #pragma omp single
    {
      x = 1;
    }
    #pragma omp single
    {
      x = x + 1;
    }
  }
  return x;
}
"#,
        false,
        vec![],
    ));

    // single nowait followed by single: unordered writers.
    v.push(Builder::new(
        "singletwice-nowait-yes",
        Category::OnceConstructs,
        "The first single carries nowait, so two (possibly different) threads write x unordered.",
        r#"
int x;
int main(void)
{
  x = 0;
  #pragma omp parallel
  {
    #pragma omp single nowait
    {
      x = 1;
    }
    #pragma omp single
    {
      x = x + 1;
    }
  }
  return x;
}
"#,
        true,
        vec![sp(("x", Op::W, 1), ("x", Op::W, 2))],
    ).behavior(ToolBehavior::Standard));

    // Ordered construct serializes the racy-looking update.
    v.push(Builder::new(
        "ordered-orig-no",
        Category::BarrierStructure,
        "A shared accumulator updated inside an ordered region: serialized by iteration order.",
        r#"
int main(void)
{
  int i;
  int checksum;
  checksum = 0;
  #pragma omp parallel for ordered
  for (i = 0; i < 64; i++) {
    #pragma omp ordered
    {
      checksum = checksum + i;
    }
  }
  return checksum;
}
"#,
        false,
        vec![],
    ));

    // Accumulator updated outside the ordered region.
    v.push(Builder::new(
        "ordered-outside-yes",
        Category::BarrierStructure,
        "The ordered region covers only part of the body; the outside update races.",
        r#"
int main(void)
{
  int i;
  int checksum;
  int trace[64];
  checksum = 0;
  #pragma omp parallel for ordered
  for (i = 0; i < 64; i++) {
    #pragma omp ordered
    {
      trace[i] = i;
    }
    checksum = checksum + i;
  }
  return checksum;
}
"#,
        true,
        vec![sp(("checksum", Op::R, 0), ("checksum", Op::W, 1))],
    ));

    v
}
