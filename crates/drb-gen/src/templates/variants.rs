//! Parametric variant families.
//!
//! DataRaceBench pads its pattern taxonomy with `-var` kernels, and a
//! large share of its race-free kernels are *deliberately hostile to
//! tools*: runtime-disjoint indirect accesses, dead branches, symbolic
//! windows — the reason Intel Inspector posts 44 false positives and 11
//! false negatives in the paper's Table 3. The `no_variants` bank below
//! reproduces that hostility (every kernel is still verified race-free
//! by the happens-before oracle); `yes_variants` adds the alias- and
//! interprocedural-heavy races that give the static baseline its FNs.

use crate::spec::{Builder, Category, Op, PairSpec, SideSpec, ToolBehavior};

fn sp(a: (&str, Op, usize), b: (&str, Op, usize)) -> PairSpec {
    PairSpec { first: SideSpec::nth(a.0, a.1, a.2), second: SideSpec::nth(b.0, b.1, b.2) }
}

/// Race-yes variants (exactly 43 kernels).
pub fn yes_variants() -> Vec<Builder> {
    let mut v = Vec::new();

    // 3: anti-dependence at various distances.
    for d in [2, 3, 16] {
        v.push(Builder::new(
            &format!("antidep-dist{d}-var-yes"),
            Category::AntiDep,
            "Anti-dependence at a constant distance; carried across worksharing chunks.",
            &format!(
                r#"
int main(void)
{{
  int i;
  int a[512];
  for (int k = 0; k < 512; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 512 - {d}; i++)
    a[i] = a[i + {d}] + 1;
  return 0;
}}
"#
            ),
            true,
            vec![sp((&format!("a[i + {d}]"), Op::R, 0), ("a[i]", Op::W, 0))],
        ));
    }

    // 2: true dependence at various distances.
    for d in [2, 8] {
        v.push(Builder::new(
            &format!("truedep-dist{d}-var-yes"),
            Category::TrueDep,
            "True dependence at a constant distance; carried across worksharing chunks.",
            &format!(
                r#"
int main(void)
{{
  int i;
  double z[512];
  for (int k = 0; k < 512; k++)
    z[k] = k * 0.5;
  #pragma omp parallel for
  for (i = 0; i < 512 - {d}; i++)
    z[i + {d}] = z[i] + 1.0;
  return 0;
}}
"#
            ),
            true,
            vec![sp(("z[i]", Op::R, 0), (&format!("z[i + {d}]"), Op::W, 0))],
        ));
    }

    // 2: output dependence on a fixed cell.
    for c in [0, 63] {
        v.push(Builder::new(
            &format!("outputdep-cell{c}-var-yes"),
            Category::OutputDep,
            "Every iteration writes the same fixed array element.",
            &format!(
                r#"
int main(void)
{{
  int i;
  int a[64];
  for (int k = 0; k < 64; k++)
    a[k] = 0;
  #pragma omp parallel for
  for (i = 0; i < 64; i++)
    a[{c}] = i;
  return 0;
}}
"#
            ),
            true,
            vec![PairSpec {
                first: SideSpec::nth(format!("a[{c}]"), Op::W, 0),
                second: SideSpec::nth(format!("a[{c}]"), Op::W, 0),
            }],
        ));
    }

    // 3: missing reduction across operators/types.
    for (tag, ty, op) in [
        ("mulint", "int", "*"),
        ("addfloat", "float", "+"),
        ("adddouble", "double", "+"),
    ] {
        v.push(Builder::new(
            &format!("reductionmissing-{tag}-var-yes"),
            Category::Reduction,
            "Accumulation into a shared variable without the needed reduction clause.",
            &format!(
                r#"
int main(void)
{{
  int i;
  {ty} acc;
  {ty} a[128];
  for (int k = 0; k < 128; k++)
    a[k] = 1;
  acc = 1;
  #pragma omp parallel for
  for (i = 0; i < 128; i++)
    acc = acc {op} a[i];
  return 0;
}}
"#
            ),
            true,
            vec![sp(("acc", Op::R, 0), ("acc", Op::W, 1))],
        ));
    }

    // 3: missing privatization of different temporaries.
    for (tag, expr) in [
        ("scaled", "a[i] * 3.0"),
        ("shifted", "a[i] + 10.0"),
        ("squared", "a[i] * a[i]"),
    ] {
        v.push(Builder::new(
            &format!("privatemissing-{tag}-var-yes"),
            Category::Privatization,
            "A shared temporary written by every iteration; private(t) is missing.",
            &format!(
                r#"
int main(void)
{{
  int i;
  double t;
  double a[96];
  double b[96];
  for (int k = 0; k < 96; k++)
    a[k] = k * 0.5;
  #pragma omp parallel for
  for (i = 0; i < 96; i++) {{
    t = {expr};
    b[i] = t;
  }}
  return 0;
}}
"#
            ),
            true,
            vec![sp(("t", Op::W, 0), ("t", Op::R, 0))],
        ));
    }

    // 2: nowait hazards at different sizes.
    for n in [96, 192] {
        v.push(Builder::new(
            &format!("nowait-n{n}-var-yes"),
            Category::BarrierStructure,
            "nowait removes the barrier between a producer loop and a neighbour-reading loop.",
            &format!(
                r#"
int main(void)
{{
  int i, j;
  int a[{n}];
  int b[{n}];
  for (int k = 0; k < {n}; k++)
    a[k] = k;
  #pragma omp parallel
  {{
    #pragma omp for nowait
    for (i = 0; i < {n}; i++)
      a[i] = a[i] * 2;
    #pragma omp for
    for (j = 0; j < {n} - 1; j++)
      b[j] = a[j + 1];
  }}
  return 0;
}}
"#
            ),
            true,
            vec![sp(("a[i]", Op::W, 0), ("a[j + 1]", Op::R, 0))],
        ));
    }

    // 2: sections producer/consumer on different payloads.
    for (tag, n) in [("small", 32), ("large", 128)] {
        v.push(Builder::new(
            &format!("sections-pc-{tag}-var-yes"),
            Category::Sections,
            "Producer and consumer sections with no ordering between them.",
            &format!(
                r#"
int q[{n}];
int total;
int main(void)
{{
  total = 0;
  #pragma omp parallel sections
  {{
    #pragma omp section
    {{
      for (int i = 0; i < {n}; i++)
        q[i] = i * 2;
    }}
    #pragma omp section
    {{
      for (int j = 0; j < {n}; j++)
        total = total + q[j];
    }}
  }}
  return total;
}}
"#
            ),
            true,
            vec![sp(("q[i]", Op::W, 0), ("q[j]", Op::R, 0))],
        ));
    }

    // 2: sibling-task conflicts on different shapes.
    v.push(Builder::new(
        "taskconflict-array-var-yes",
        Category::Tasks,
        "Two tasks write overlapping halves of an array.",
        r#"
int seg[64];
int main(void)
{
  #pragma omp parallel
  {
    #pragma omp single
    {
      #pragma omp task
      {
        for (int i = 0; i < 40; i++)
          seg[i] = 1;
      }
      #pragma omp task
      {
        for (int j = 24; j < 64; j++)
          seg[j] = 2;
      }
    }
  }
  return seg[30];
}
"#,
        true,
        vec![sp(("seg[i]", Op::W, 0), ("seg[j]", Op::W, 0))],
    ));
    v.push(Builder::new(
        "taskconflict-scalar-var-yes",
        Category::Tasks,
        "A task and its generating thread both write a shared scalar.",
        r#"
int mark;
int out2[4];
int main(void)
{
  mark = 0;
  #pragma omp parallel
  {
    #pragma omp single
    {
      #pragma omp task
      {
        mark = 1;
      }
      mark = 2;
    }
  }
  return mark;
}
"#,
        true,
        vec![sp(("mark", Op::W, 1), ("mark", Op::W, 2))],
    ));

    // 2: histograms with different bin counts.
    for m in [8, 32] {
        v.push(Builder::new(
            &format!("histogram-bins{m}-var-yes"),
            Category::Indirect,
            "Histogram increments without atomics collide in the shared bins.",
            &format!(
                r#"
int main(void)
{{
  int i;
  int bins[{m}];
  for (int k = 0; k < {m}; k++)
    bins[k] = 0;
  #pragma omp parallel for
  for (i = 0; i < 256; i++)
    bins[i % {m}] = bins[i % {m}] + 1;
  return 0;
}}
"#
            ),
            true,
            vec![sp(
                (&format!("bins[i % {m}]"), Op::R, 0),
                (&format!("bins[i % {m}]"), Op::W, 0),
            )],
        ));
    }

    // 2: indirect collisions through duplicate-heavy index maps.
    for d in [3, 5] {
        v.push(Builder::new(
            &format!("indirect-div{d}-var-yes"),
            Category::Indirect,
            "Index map k/d funnels several iterations onto one element.",
            &format!(
                r#"
int main(void)
{{
  int i;
  int idx[90];
  double a[90];
  for (int k = 0; k < 90; k++) {{
    idx[k] = k / {d};
    a[k] = k;
  }}
  #pragma omp parallel for
  for (i = 0; i < 90; i++)
    a[idx[i]] = a[idx[i]] + 1.0;
  return 0;
}}
"#
            ),
            true,
            vec![sp(("a[idx[i]]", Op::R, 0), ("a[idx[i]]", Op::W, 0))],
        ));
    }

    // 2: in-place 1D stencils.
    for n in [100, 400] {
        v.push(Builder::new(
            &format!("stencil1d-n{n}-var-yes"),
            Category::Stencil,
            "In-place 1D stencil reads both neighbours while they are written.",
            &format!(
                r#"
int main(void)
{{
  int i;
  double u[{n}];
  for (int k = 0; k < {n}; k++)
    u[k] = k;
  #pragma omp parallel for
  for (i = 1; i < {n} - 1; i++)
    u[i] = 0.5 * (u[i - 1] + u[i + 1]);
  return 0;
}}
"#
            ),
            true,
            vec![sp(("u[i + 1]", Op::R, 0), ("u[i]", Op::W, 0))],
        ));
    }

    // 7: alias/interprocedural races the static tool cannot see
    // (the FN bank behind Table 3's Inspector misses).
    v.push(
        Builder::new(
            "alias-writeptr-var-yes",
            Category::Aliasing,
            "The write goes through the alias while the read uses the array name.",
            r#"
int base[150];
int main(void)
{
  int i;
  int* w;
  w = base;
  for (int k = 0; k < 150; k++)
    base[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 149; i++)
    w[i] = base[i + 1] + 1;
  return 0;
}
"#,
            true,
            vec![sp(("base[i + 1]", Op::R, 0), ("w[i]", Op::W, 0))],
        )
        .behavior(ToolBehavior::EvadesStatic),
    );

    v.push(
        Builder::new(
            "alias-midpoint-var-yes",
            Category::Aliasing,
            "A pointer anchored at the array midpoint shifts the read window one past the writes.",
            r#"
double line[160];
int main(void)
{
  int i;
  double* mid;
  mid = line + 80;
  for (int k = 0; k < 160; k++)
    line[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 80; i++)
    line[i + 40] = mid[i - 39] + 1.0;
  return 0;
}
"#,
            true,
            vec![sp(("mid[i - 39]", Op::R, 0), ("line[i + 40]", Op::W, 0))],
        )
        .behavior(ToolBehavior::EvadesStatic),
    );

    v.push(
        Builder::new(
            "alias-backward-var-yes",
            Category::Aliasing,
            "An alias shifted by two elements turns the update into a carried dependence.",
            r#"
int arr2[200];
int main(void)
{
  int i;
  int* q;
  q = arr2 + 2;
  for (int k = 0; k < 200; k++)
    arr2[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 198; i++)
    arr2[i] = q[i] + 1;
  return 0;
}
"#,
            true,
            vec![sp(("q[i]", Op::R, 0), ("arr2[i]", Op::W, 0))],
        )
        .behavior(ToolBehavior::EvadesStatic),
    );

    v.push(
        Builder::new(
            "alias-chain-var-yes",
            Category::Aliasing,
            "The alias is laundered through a second pointer assignment.",
            r#"
int data3[128];
int main(void)
{
  int i;
  int* p1;
  int* p2;
  p1 = data3;
  p2 = p1;
  for (int k = 0; k < 128; k++)
    data3[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 127; i++)
    p2[i] = data3[i + 1] * 2;
  return 0;
}
"#,
            true,
            vec![sp(("data3[i + 1]", Op::R, 0), ("p2[i]", Op::W, 0))],
        )
        .behavior(ToolBehavior::EvadesStatic),
    );

    v.push(
        Builder::new(
            "interproc-exprarg-var-yes",
            Category::Interprocedural,
            "The helper call's computed argument defeats conservative inlining.",
            r#"
int glob4[256];
void shiftleft(int i)
{
  glob4[i] = glob4[i + 1];
}
int main(void)
{
  int i;
  for (int k = 0; k < 256; k++)
    glob4[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 255; i++)
    shiftleft(i * 1);
  return 0;
}
"#,
            true,
            vec![sp(("glob4[i + 1]", Op::R, 0), ("glob4[i]", Op::W, 0))],
        )
        .behavior(ToolBehavior::EvadesStatic),
    );

    v.push(
        Builder::new(
            "globalptr-alias-var-yes",
            Category::Aliasing,
            "A global pointer aliases the array across statement distance.",
            r#"
double field2[128];
double* view;
int main(void)
{
  int i;
  view = field2;
  for (int k = 0; k < 128; k++)
    field2[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 127; i++)
    field2[i] = view[i + 1] * 0.5;
  return 0;
}
"#,
            true,
            vec![sp(("view[i + 1]", Op::R, 0), ("field2[i]", Op::W, 0))],
        )
        .behavior(ToolBehavior::EvadesStatic),
    );

    v.push(
        Builder::new(
            "singlelocal-task-var-yes",
            Category::Tasks,
            "Tasks share a block-scope local of the single construct; the generator mutates it.",
            r#"
int sink4[64];
int main(void)
{
  #pragma omp parallel
  {
    #pragma omp single
    {
      int cursor;
      cursor = 0;
      for (int t = 0; t < 8; t++) {
        #pragma omp task
        {
          sink4[cursor] = cursor;
        }
        cursor = cursor + 8;
      }
    }
  }
  return 0;
}
"#,
            true,
            vec![sp(("cursor", Op::R, 1), ("cursor", Op::W, 1))],
        )
        .behavior(ToolBehavior::EvadesStatic),
    );

    // 2: interprocedural races the inliner does see (Standard).
    v.push(Builder::new(
        "interproc-arrayhelper-var-yes",
        Category::Interprocedural,
        "The helper performs the neighbour read that makes the loop carried.",
        r#"
int series[200];
void relax(int i)
{
  series[i] = series[i + 1] + 1;
}
int main(void)
{
  int i;
  for (int k = 0; k < 200; k++)
    series[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 199; i++)
    relax(i);
  return 0;
}
"#,
        true,
        vec![sp(("series[i + 1]", Op::R, 0), ("series[i]", Op::W, 0))],
    ));
    v.push(Builder::new(
        "interproc-flagsetter-var-yes",
        Category::Interprocedural,
        "A helper sets a shared flag from every thread.",
        r#"
int seen;
void note(void)
{
  seen = seen + 1;
}
int main(void)
{
  seen = 0;
  #pragma omp parallel
  {
    note();
  }
  return seen;
}
"#,
        true,
        vec![sp(("seen", Op::R, 0), ("seen", Op::W, 0))],
    ));

    // 2: unprotected array-element accumulations.
    for c in [0, 9] {
        v.push(Builder::new(
            &format!("criticalmissing-elem{c}-var-yes"),
            Category::MissingSync,
            "All threads accumulate into one array element without protection.",
            &format!(
                r#"
int cells[16];
int main(void)
{{
  for (int k = 0; k < 16; k++)
    cells[k] = 0;
  #pragma omp parallel
  {{
    cells[{c}] = cells[{c}] + 1;
  }}
  return cells[{c}];
}}
"#
            ),
            true,
            vec![sp(
                (&format!("cells[{c}]"), Op::R, 0),
                (&format!("cells[{c}]"), Op::W, 0),
            )],
        ));
    }

    // 1: Fibonacci-style double recurrence.
    v.push(Builder::new(
        "fibonacci-var-yes",
        Category::TrueDep,
        "A two-term recurrence parallelized incorrectly.",
        r#"
int main(void)
{
  int i;
  long f[90];
  f[0] = 0;
  f[1] = 1;
  #pragma omp parallel for
  for (i = 2; i < 90; i++)
    f[i] = f[i - 1] + f[i - 2];
  return 0;
}
"#,
        true,
        vec![sp(("f[i - 1]", Op::R, 0), ("f[i]", Op::W, 0))],
    ));

    // 2: schedule-variant recurrences.
    for (tag, sched) in [("dynamic1", "schedule(dynamic)"), ("staticchunk2", "schedule(static, 2)")]
    {
        v.push(Builder::new(
            &format!("scheduledep-{tag}-var-yes"),
            Category::BarrierStructure,
            "A carried dependence under an explicit schedule clause.",
            &format!(
                r#"
int main(void)
{{
  int i;
  int s[256];
  for (int k = 0; k < 256; k++)
    s[k] = k;
  #pragma omp parallel for {sched}
  for (i = 0; i < 255; i++)
    s[i] = s[i + 1] + 1;
  return 0;
}}
"#
            ),
            true,
            vec![sp(("s[i + 1]", Op::R, 0), ("s[i]", Op::W, 0))],
        ));
    }

    // 1: atomic read paired with plain write.
    v.push(Builder::new(
        "atomicread-plainwrite-var-yes",
        Category::MissingSync,
        "A reader uses omp atomic read but the writer stores plainly.",
        r#"
int level;
int probe2[16];
int main(void)
{
  level = 0;
  #pragma omp parallel
  {
    if (omp_get_thread_num() == 0) {
      level = 3;
    } else {
      int got;
      #pragma omp atomic read
      got = level;
      probe2[omp_get_thread_num()] = got;
    }
  }
  return 0;
}
"#,
        true,
        vec![sp(("level", Op::W, 1), ("level", Op::R, 0))],
    ));

    // 1: master init variant with array payload.
    v.push(Builder::new(
        "masterinit-array-var-yes",
        Category::OnceConstructs,
        "master fills a table that the team reads without an intervening barrier.",
        r#"
int table2[32];
int out3[32];
int main(void)
{
  #pragma omp parallel num_threads(8)
  {
    #pragma omp master
    {
      for (int k = 0; k < 32; k++)
        table2[k] = k * k;
    }
    out3[omp_get_thread_num()] = table2[omp_get_thread_num()];
  }
  return 0;
}
"#,
        true,
        vec![sp(("table2[k]", Op::W, 0), ("table2[omp_get_thread_num()]", Op::R, 0))],
    ));

    // 1: flush-only signalling variant.
    v.push(Builder::new(
        "flush-pipeline-var-yes",
        Category::MissingSync,
        "A two-stage pipeline hand-off guarded only by flush.",
        r#"
double stagebuf;
int done;
int main(void)
{
  stagebuf = 0.0;
  done = 0;
  #pragma omp parallel
  {
    if (omp_get_thread_num() == 0) {
      stagebuf = 3.14;
      #pragma omp flush
      done = 1;
    } else {
      if (done == 1) {
        double local;
        local = stagebuf * 2.0;
      }
    }
  }
  return 0;
}
"#,
        true,
        vec![sp(("stagebuf", Op::W, 1), ("stagebuf", Op::R, 0))],
    ));

    // 1: 2D row-overlap write/read.
    v.push(Builder::new(
        "rowoverlap2d-var-yes",
        Category::Stencil,
        "Each outer iteration writes its row and reads the next row while a neighbour writes it.",
        r#"
int main(void)
{
  int i, j;
  double grid2[26][26];
  for (int k = 0; k < 26; k++)
    for (int m = 0; m < 26; m++)
      grid2[k][m] = k * m;
  #pragma omp parallel for private(j)
  for (i = 0; i < 25; i++)
    for (j = 0; j < 26; j++)
      grid2[i][j] = grid2[i + 1][j] + 1.0;
  return 0;
}
"#,
        true,
        vec![sp(("grid2[i + 1][j]", Op::R, 0), ("grid2[i][j]", Op::W, 0))],
    ));

    v
}

/// Race-free variants (exactly 39 kernels — all of them the FP bank:
/// runtime-disjoint patterns a static tool cannot prove safe).
pub fn no_variants() -> Vec<Builder> {
    let mut v = Vec::new();

    // ---- FP bank: 39 runtime-safe, statically-opaque kernels ----

    // 8: modular permutations a[(K*i + C) % N] with gcd(K, N) = 1.
    for (kk, cc, n) in [
        (3, 0, 64),
        (5, 1, 64),
        (7, 3, 128),
        (9, 2, 128),
        (11, 5, 256),
        (13, 7, 256),
        (17, 4, 96),
        (23, 9, 100),
    ] {
        v.push(
            Builder::new(
                &format!("modperm-k{kk}c{cc}n{n}-var-no"),
                Category::Indirect,
                "Modular permutation subscript: one writer per element, opaque to static analysis.",
                &format!(
                    r#"
int main(void)
{{
  int i;
  double a[{n}];
  for (int k = 0; k < {n}; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < {n}; i++)
    a[({kk} * i + {cc}) % {n}] = i * 2.0;
  return 0;
}}
"#
                ),
                false,
                vec![],
            )
            .behavior(ToolBehavior::TripsStatic),
        );
    }

    // 6: index-array permutations (gather/scatter).
    for (m, c, n) in
        [(37, 11, 64), (41, 3, 64), (29, 17, 128), (53, 5, 128), (61, 1, 96), (19, 7, 96)]
    {
        v.push(
            Builder::new(
                &format!("idxperm-m{m}c{c}n{n}-var-no"),
                Category::Indirect,
                "Scatter through a precomputed permutation: disjoint at runtime.",
                &format!(
                    r#"
int main(void)
{{
  int i;
  int idx[{n}];
  double a[{n}];
  for (int k = 0; k < {n}; k++) {{
    idx[k] = (k * {m} + {c}) % {n};
    a[k] = 0.0;
  }}
  #pragma omp parallel for
  for (i = 0; i < {n}; i++)
    a[idx[i]] = i + 1.0;
  return 0;
}}
"#
                ),
                false,
                vec![],
            )
            .behavior(ToolBehavior::TripsStatic),
        );
    }

    // 4: dead branches — the conflicting write can never execute.
    for (tag, guard, modv) in [
        ("gt", "d[i] > 200", 10),
        ("eq", "d[i] == 77", 9),
        ("lt", "d[i] < -5", 12),
        ("div", "d[i] / 100 == 9", 8),
    ] {
        v.push(
            Builder::new(
                &format!("deadbranch-{tag}-var-no"),
                Category::Control,
                "The shared write hides behind a branch the data never takes.",
                &format!(
                    r#"
int hitvar;
int main(void)
{{
  int i;
  int d[100];
  for (int k = 0; k < 100; k++)
    d[k] = k % {modv};
  hitvar = -1;
  #pragma omp parallel for
  for (i = 0; i < 100; i++)
    if ({guard})
      hitvar = i;
  return hitvar;
}}
"#
                ),
                false,
                vec![],
            )
            .behavior(ToolBehavior::TripsStatic),
        );
    }

    // 3: exactly one iteration writes the scalar.
    for pick in [0, 17, 63] {
        v.push(
            Builder::new(
                &format!("singlewriter-i{pick}-var-no"),
                Category::Control,
                "Exactly one iteration writes the scalar: no concurrent writers.",
                &format!(
                    r#"
int chosen;
int main(void)
{{
  int i;
  double a[64];
  for (int k = 0; k < 64; k++)
    a[k] = k;
  chosen = 0;
  #pragma omp parallel for
  for (i = 0; i < 64; i++)
    if (i == {pick})
      chosen = i + 1;
  return chosen;
}}
"#
                ),
                false,
                vec![],
            )
            .behavior(ToolBehavior::TripsStatic),
        );
    }

    // 4: thread-id-sliced buffers in plain parallel regions.
    for (tag, stride) in [("flat", 1), ("pad2", 2), ("pad4", 4), ("pad8", 8)] {
        v.push(
            Builder::new(
                &format!("tidslice-{tag}-var-no"),
                Category::Privatization,
                "Each thread writes its own (padded) slot, indexed by thread id.",
                &format!(
                    r#"
double slots2[256];
int main(void)
{{
  #pragma omp parallel num_threads(8)
  {{
    int me;
    me = omp_get_thread_num();
    slots2[me * {stride}] = me * 1.5;
    slots2[me * {stride}] = slots2[me * {stride}] + 1.0;
  }}
  return 0;
}}
"#
                ),
                false,
                vec![],
            )
            .behavior(ToolBehavior::TripsStatic),
        );
    }

    // 4: symbolic window splits, disjoint at runtime.
    for (tag, off_expr, wlen) in [
        ("half", "n / 2 + argc - 1", 64),
        ("third", "2 * (n / 3) + argc - 1", 42),
        ("quarter", "3 * (n / 4) + argc - 1", 32),
        ("fixed", "96 + argc - 1", 32),
    ] {
        v.push(
            Builder::new(
                &format!("symbolicwindow-{tag}-var-no"),
                Category::Symbolic,
                "Write window and read window split at a symbolic offset: disjoint at runtime.",
                &format!(
                    r#"
int main(int argc, char* argv[])
{{
  int i;
  int n = 128;
  int split = {off_expr};
  double a[128];
  for (int k = 0; k < 128; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < {wlen}; i++)
    a[i] = a[i + split] * 0.5;
  return 0;
}}
"#
                ),
                false,
                vec![],
            )
            .behavior(ToolBehavior::TripsStatic),
        );
    }

    // 3: nowait between loops over disjoint windows of one array.
    for (tag, n) in [("a", 64), ("b", 96), ("c", 128)] {
        v.push(
            Builder::new(
                &format!("nowait-windows-{tag}-var-no"),
                Category::BarrierStructure,
                "nowait between worksharing loops touching disjoint halves of one array.",
                &format!(
                    r#"
int main(void)
{{
  int i, j;
  double a[{total}];
  for (int k = 0; k < {total}; k++)
    a[k] = k;
  #pragma omp parallel
  {{
    #pragma omp for nowait
    for (i = 0; i < {n}; i++)
      a[i] = a[i] + 1.0;
    #pragma omp for
    for (j = 0; j < {n}; j++)
      a[j + {n}] = a[j + {n}] * 2.0;
  }}
  return 0;
}}
"#,
                    total = 2 * n
                ),
                false,
                vec![],
            )
            .behavior(ToolBehavior::TripsStatic),
        );
    }

    // 2: tasks scattering through firstprivate-derived disjoint slots.
    for (tag, mul, m) in [("m3", 3, 8), ("m5", 5, 16)] {
        v.push(
            Builder::new(
                &format!("taskscatter-{tag}-var-no"),
                Category::Tasks,
                "Loop-spawned tasks write modularly-distinct slots (firstprivate index).",
                &format!(
                    r#"
int cells2[{m}];
int main(void)
{{
  #pragma omp parallel
  {{
    #pragma omp single
    {{
      int t;
      for (t = 0; t < {m}; t++) {{
        #pragma omp task firstprivate(t)
        {{
          cells2[({mul} * t) % {m}] = t;
        }}
      }}
    }}
  }}
  return cells2[0];
}}
"#
                ),
                false,
                vec![],
            )
            .behavior(ToolBehavior::TripsStatic),
        );
    }

    // 2: master writes slot 0, team writes slots tid+1.
    for (tag, width) in [("w16", 16), ("w32", 32)] {
        v.push(
            Builder::new(
                &format!("masterslice-{tag}-var-no"),
                Category::OnceConstructs,
                "master and team write provably different slots of one array.",
                &format!(
                    r#"
int echo2[{width}];
int cfg2;
int main(void)
{{
  cfg2 = 9;
  #pragma omp parallel num_threads(8)
  {{
    #pragma omp master
    {{
      echo2[0] = cfg2;
    }}
    echo2[omp_get_thread_num() + 1] = cfg2;
  }}
  return 0;
}}
"#
                ),
                false,
                vec![],
            )
            .behavior(ToolBehavior::TripsStatic),
        );
    }

    // 1: disguised identity permutation.
    v.push(
        Builder::new(
            "disguised-identity-var-no",
            Category::Indirect,
            "a[2*(i/2) + i%2] is just a[i], but no static tool simplifies it.",
            r#"
int main(void)
{
  int i;
  double a[128];
  for (int k = 0; k < 128; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 128; i++)
    a[2 * (i / 2) + i % 2] = a[2 * (i / 2) + i % 2] + 1.0;
  return 0;
}
"#,
            false,
            vec![],
        )
        .behavior(ToolBehavior::TripsStatic),
    );

    // 1: sections over computed disjoint halves.
    v.push(
        Builder::new(
            "sections-computedhalves-var-no",
            Category::Sections,
            "Two sections update halves selected by computed bounds.",
            r#"
int data2[128];
int half2;
int main(void)
{
  half2 = 64;
  #pragma omp parallel sections
  {
    #pragma omp section
    {
      for (int i = 0; i < 64; i++)
        data2[i] = i;
    }
    #pragma omp section
    {
      for (int j = 0; j < 64; j++)
        data2[j + half2] = j;
    }
  }
  return data2[0];
}
"#,
            false,
            vec![],
        )
        .behavior(ToolBehavior::TripsStatic),
    );

    // 1: parity-striped writes (disjoint by parity, opaque to tools).
    v.push(
        Builder::new(
            "paritystripe-var-no",
            Category::Control,
            "Even iterations write even cells, odd write odd: disjoint by parity.",
            r#"
int main(void)
{
  int i;
  double a[128];
  for (int k = 0; k < 128; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 128; i++) {
    if (i % 2 == 0)
      a[i % 2 + 2 * (i / 2)] = 1.0;
    else
      a[i % 2 + 2 * (i / 2)] = 2.0;
  }
  return 0;
}
"#,
            false,
            vec![],
        )
        .behavior(ToolBehavior::TripsStatic),
    );

    v
}
