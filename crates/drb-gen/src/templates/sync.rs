//! Synchronization kernels: missing/correct critical, atomic flavours,
//! runtime locks, named criticals, reductions (DRB's `criticalmiss*`,
//! `atomic*`, `lock*`, `reduction*` families).

use crate::spec::{Builder, Category, Op, PairSpec, SideSpec};

fn scalar_pair(name: &str, op1: Op, occ1: usize, op2: Op, occ2: usize) -> PairSpec {
    PairSpec {
        first: SideSpec::nth(name, op1, occ1),
        second: SideSpec::nth(name, op2, occ2),
    }
}

/// All synchronization-family kernels.
pub fn kernels() -> Vec<Builder> {
    let mut v = Vec::new();

    // Missing critical around a shared counter update (classic).
    for (tag, n) in [("orig", 4), ("var1", 8)] {
        v.push(Builder::new(
            &format!("criticalmissing-{tag}-yes"),
            Category::MissingSync,
            "Shared counter updated in a parallel region without any mutual exclusion.",
            &format!(
                r#"
#include <stdio.h>
int counter;
int main(void)
{{
  counter = 0;
  #pragma omp parallel num_threads({n})
  {{
    counter = counter + 1;
  }}
  printf("%d\n", counter);
  return 0;
}}
"#
            ),
            true,
            // The read of `counter` inside the region (occurrence 1 after
            // the init write... reads: occurrence 0 is the region read).
            vec![scalar_pair("counter", Op::R, 0, Op::W, 1)],
        ));
    }

    // Correct critical.
    v.push(Builder::new(
        "critical1-orig-no",
        Category::Sync,
        "Shared counter correctly protected by an anonymous critical section.",
        r#"
int counter;
int main(void)
{
  counter = 0;
  #pragma omp parallel
  {
    #pragma omp critical
    {
      counter = counter + 1;
    }
  }
  return counter;
}
"#,
        false,
        vec![],
    ));

    // Named criticals protecting the same variable with different names.
    v.push(Builder::new(
        "criticalname-mismatch-yes",
        Category::MissingSync,
        "Two critical sections with different names do not exclude each other.",
        r#"
int x;
int main(void)
{
  x = 0;
  #pragma omp parallel
  {
    #pragma omp critical (alpha)
    {
      x = x + 1;
    }
    #pragma omp critical (beta)
    {
      x = x * 2;
    }
  }
  return x;
}
"#,
        true,
        vec![scalar_pair("x", Op::W, 1, Op::W, 2)],
    ));

    // Named criticals used consistently.
    v.push(Builder::new(
        "criticalname-consistent-no",
        Category::Sync,
        "All updates to x funnel through the same named critical section.",
        r#"
int x;
int main(void)
{
  x = 0;
  #pragma omp parallel
  {
    #pragma omp critical (alpha)
    {
      x = x + 1;
    }
    #pragma omp critical (alpha)
    {
      x = x * 2;
    }
  }
  return x;
}
"#,
        false,
        vec![],
    ));

    // Atomic update, correct.
    for (tag, expr) in [("update", "x += 1;"), ("incr", "x++;")] {
        v.push(Builder::new(
            &format!("atomic-{tag}-no"),
            Category::Sync,
            "Shared accumulator protected by omp atomic.",
            &format!(
                r#"
int x;
int main(void)
{{
  x = 0;
  #pragma omp parallel
  {{
    #pragma omp atomic
    {expr}
  }}
  return x;
}}
"#
            ),
            false,
            vec![],
        ));
    }

    // Atomic protecting the update but a plain read elsewhere.
    v.push(Builder::new(
        "atomic-plainread-yes",
        Category::MissingSync,
        "Atomic update of x, but another statement reads x without atomicity.",
        r#"
int x;
int y[64];
int main(void)
{
  x = 0;
  #pragma omp parallel
  {
    #pragma omp atomic
    x += 1;
    y[omp_get_thread_num()] = x;
  }
  return x;
}
"#,
        true,
        vec![scalar_pair("x", Op::W, 1, Op::R, 1)],
    ));

    // Missing atomic entirely (update expression).
    v.push(Builder::new(
        "atomicmissing-yes",
        Category::MissingSync,
        "Compound update of a shared variable with no protection at all.",
        r#"
double sum;
int main(void)
{
  sum = 0.0;
  #pragma omp parallel
  {
    sum += 2.5;
  }
  return 0;
}
"#,
        true,
        vec![scalar_pair("sum", Op::R, 0, Op::W, 1)],
    ));

    // Runtime locks, correct.
    v.push(Builder::new(
        "lock1-orig-no",
        Category::Sync,
        "Shared counter protected by an OpenMP runtime lock.",
        r#"
int counter;
omp_lock_t lck;
int main(void)
{
  counter = 0;
  omp_init_lock(&lck);
  #pragma omp parallel
  {
    omp_set_lock(&lck);
    counter = counter + 1;
    omp_unset_lock(&lck);
  }
  omp_destroy_lock(&lck);
  return counter;
}
"#,
        false,
        vec![],
    ));

    // Two different locks "protecting" the same data.
    v.push(Builder::new(
        "locktwo-mismatch-yes",
        Category::MissingSync,
        "Threads take different locks around the same shared update.",
        r#"
int counter;
omp_lock_t lck1;
omp_lock_t lck2;
int main(void)
{
  counter = 0;
  omp_init_lock(&lck1);
  omp_init_lock(&lck2);
  #pragma omp parallel
  {
    if (omp_get_thread_num() % 2 == 0) {
      omp_set_lock(&lck1);
      counter = counter + 1;
      omp_unset_lock(&lck1);
    } else {
      omp_set_lock(&lck2);
      counter = counter + 1;
      omp_unset_lock(&lck2);
    }
  }
  return counter;
}
"#,
        true,
        vec![scalar_pair("counter", Op::W, 1, Op::W, 2)],
    ));

    // Lock released too early.
    v.push(Builder::new(
        "lockearly-release-yes",
        Category::MissingSync,
        "The lock is released before the final write to the shared variable.",
        r#"
int total;
omp_lock_t lck;
int main(void)
{
  total = 0;
  omp_init_lock(&lck);
  #pragma omp parallel
  {
    int t;
    omp_set_lock(&lck);
    t = total;
    omp_unset_lock(&lck);
    total = t + 1;
  }
  omp_destroy_lock(&lck);
  return total;
}
"#,
        true,
        vec![scalar_pair("total", Op::W, 1, Op::W, 1)],
    ));

    // Reduction: correct clause.
    for (tag, op, init, ty) in [
        ("add", "+", "0", "int"),
        ("mul", "*", "1", "int"),
        ("min", "min", "1000000", "int"),
        ("max", "max", "-1000000", "int"),
    ] {
        v.push(Builder::new(
            &format!("reduction-{tag}-no"),
            Category::Reduction,
            "Reduction computed with the proper reduction clause.",
            &format!(
                r#"
int main(void)
{{
  int i;
  {ty} result;
  {ty} a[200];
  for (int k = 0; k < 200; k++)
    a[k] = k % 13;
  result = {init};
  #pragma omp parallel for reduction({op}: result)
  for (i = 0; i < 200; i++)
    result = result {plus} a[i];
  return 0;
}}
"#,
                plus = if op == "min" || op == "max" {
                    // min/max reductions in C style: result = a[i] < result ? ... —
                    // keep it simple with +, the clause still privatizes.
                    "+"
                } else {
                    op
                }
            ),
            false,
            vec![],
        ));
    }

    // Missing reduction clause.
    for (tag, n) in [("orig", 100), ("var1", 1000)] {
        v.push(Builder::new(
            &format!("reductionmissing-{tag}-yes"),
            Category::Reduction,
            "Sum accumulated into a shared variable without a reduction clause.",
            &format!(
                r#"
int main(void)
{{
  int i;
  double sum;
  double a[{n}];
  for (int k = 0; k < {n}; k++)
    a[k] = 0.5 * k;
  sum = 0.0;
  #pragma omp parallel for
  for (i = 0; i < {n}; i++)
    sum += a[i];
  return 0;
}}
"#
            ),
            true,
            vec![scalar_pair("sum", Op::R, 0, Op::W, 1)],
        ));
    }

    // Two reductions, one missing.
    v.push(Builder::new(
        "reduction-partial-yes",
        Category::Reduction,
        "Two accumulators; only one is covered by the reduction clause.",
        r#"
int main(void)
{
  int i;
  double sum1;
  double sum2;
  double a[300];
  for (int k = 0; k < 300; k++)
    a[k] = k * 0.1;
  sum1 = 0.0;
  sum2 = 0.0;
  #pragma omp parallel for reduction(+: sum1)
  for (i = 0; i < 300; i++) {
    sum1 += a[i];
    sum2 += a[i] * 2.0;
  }
  return 0;
}
"#,
        true,
        vec![scalar_pair("sum2", Op::R, 0, Op::W, 1)],
    ));

    // Critical inside loop, correct but slow (race-free).
    v.push(Builder::new(
        "critical-inloop-no",
        Category::Sync,
        "Accumulation protected by a critical section inside the loop.",
        r#"
int main(void)
{
  int i;
  double total;
  double a[150];
  for (int k = 0; k < 150; k++)
    a[k] = k;
  total = 0.0;
  #pragma omp parallel for
  for (i = 0; i < 150; i++) {
    #pragma omp critical
    {
      total = total + a[i];
    }
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Atomic capture, correct.
    v.push(Builder::new(
        "atomic-capture-no",
        Category::Sync,
        "Unique index handout via atomic capture.",
        r#"
int next;
int slots[64];
int main(void)
{
  int i;
  next = 0;
  #pragma omp parallel for
  for (i = 0; i < 64; i++) {
    int mine;
    #pragma omp atomic capture
    mine = next++;
    slots[i] = mine;
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Atomic write vs atomic read of a flag (both atomic: no race).
    v.push(Builder::new(
        "atomic-flag-no",
        Category::Sync,
        "A flag written and read under omp atomic write/read.",
        r#"
int flag;
int main(void)
{
  flag = 0;
  #pragma omp parallel
  {
    if (omp_get_thread_num() == 0) {
      #pragma omp atomic write
      flag = 1;
    } else {
      int seen;
      #pragma omp atomic read
      seen = flag;
    }
  }
  return flag;
}
"#,
        false,
        vec![],
    ));

    v
}
