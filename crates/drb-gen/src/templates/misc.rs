//! Remaining families: target constructs, stencils, schedule variants,
//! collapse, and the three oversized kernels that the DRB-ML token
//! filter drops (198 of 201 survive, as in the paper §3.2).

use crate::spec::{Builder, Category, Op, PairSpec, SideSpec};

fn sp(a: (&str, Op, usize), b: (&str, Op, usize)) -> PairSpec {
    PairSpec { first: SideSpec::nth(a.0, a.1, a.2), second: SideSpec::nth(b.0, b.1, b.2) }
}

/// All miscellaneous kernels.
pub fn kernels() -> Vec<Builder> {
    let mut v = Vec::new();

    // Target offload-style loop, racy recurrence.
    v.push(Builder::new(
        "targetparallelfor-dep-yes",
        Category::Target,
        "target teams distribute parallel for over a recurrence.",
        r#"
int main(void)
{
  int i;
  double p[180];
  for (int k = 0; k < 180; k++)
    p[k] = k;
  #pragma omp target teams distribute parallel for map(tofrom: p)
  for (i = 0; i < 179; i++)
    p[i] = p[i + 1] * 0.5;
  return 0;
}
"#,
        true,
        vec![sp(("p[i + 1]", Op::R, 0), ("p[i]", Op::W, 0))],
    ));

    // Target offload, clean.
    v.push(Builder::new(
        "targetparallelfor-no",
        Category::Target,
        "target teams distribute parallel for, elementwise: race-free.",
        r#"
int main(void)
{
  int i;
  double p[180];
  for (int k = 0; k < 180; k++)
    p[k] = k;
  #pragma omp target teams distribute parallel for map(tofrom: p)
  for (i = 0; i < 180; i++)
    p[i] = p[i] * 0.5;
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Jacobi with separate in/out arrays: classic race-free stencil.
    v.push(Builder::new(
        "jacobi-separate-no",
        Category::Stencil,
        "Jacobi sweep reading old[] and writing new_[]: no conflict.",
        r#"
int main(void)
{
  int i, j;
  double old[34][34];
  double new_[34][34];
  for (int k = 0; k < 34; k++)
    for (int m = 0; m < 34; m++)
      old[k][m] = k + m;
  #pragma omp parallel for private(j)
  for (i = 1; i < 33; i++)
    for (j = 1; j < 33; j++)
      new_[i][j] = 0.25 * (old[i - 1][j] + old[i + 1][j] + old[i][j - 1] + old[i][j + 1]);
  return 0;
}
"#,
        false,
        vec![],
    ));

    // In-place Gauss-Seidel: carried both directions.
    v.push(Builder::new(
        "seidel-inplace-yes",
        Category::Stencil,
        "In-place sweep: iteration i reads rows i-1 and i+1 while others write them.",
        r#"
int main(void)
{
  int i, j;
  double g[34][34];
  for (int k = 0; k < 34; k++)
    for (int m = 0; m < 34; m++)
      g[k][m] = k * m;
  #pragma omp parallel for private(j)
  for (i = 1; i < 33; i++)
    for (j = 1; j < 33; j++)
      g[i][j] = 0.25 * (g[i - 1][j] + g[i + 1][j] + g[i][j - 1] + g[i][j + 1]);
  return 0;
}
"#,
        true,
        vec![sp(("g[i + 1][j]", Op::R, 0), ("g[i][j]", Op::W, 0))],
    ));

    // collapse(2) over independent cells.
    v.push(Builder::new(
        "collapse2-no",
        Category::Stencil,
        "collapse(2) nest writing one distinct cell per collapsed iteration.",
        r#"
int main(void)
{
  int i, j;
  double c[24][24];
  #pragma omp parallel for collapse(2)
  for (i = 0; i < 24; i++)
    for (j = 0; j < 24; j++)
      c[i][j] = i * 24 + j;
  return 0;
}
"#,
        false,
        vec![],
    ));

    // collapse(2) with a dependence on the second dimension: now carried
    // by the collapsed iteration space.
    v.push(Builder::new(
        "collapse2-dep-yes",
        Category::Stencil,
        "collapse(2) with dynamic scheduling makes the inner-dimension dependence cross threads.",
        r#"
int main(void)
{
  int i, j;
  double c[24][24];
  for (int k = 0; k < 24; k++)
    for (int m = 0; m < 24; m++)
      c[k][m] = k + m;
  #pragma omp parallel for collapse(2) schedule(dynamic, 3)
  for (i = 0; i < 24; i++)
    for (j = 0; j < 23; j++)
      c[i][j] = c[i][j + 1] * 0.5;
  return 0;
}
"#,
        true,
        vec![sp(("c[i][j + 1]", Op::R, 0), ("c[i][j]", Op::W, 0))],
    ));

    // Dynamic schedule over a recurrence (schedule-dependent exposure).
    v.push(Builder::new(
        "dynamicschedule-dep-yes",
        Category::BarrierStructure,
        "Recurrence under schedule(dynamic): chunk interleaving exposes the race widely.",
        r#"
int main(void)
{
  int i;
  float r[256];
  for (int k = 0; k < 256; k++)
    r[k] = k;
  #pragma omp parallel for schedule(dynamic, 8)
  for (i = 0; i < 255; i++)
    r[i] = r[i + 1] + 1.0f;
  return 0;
}
"#,
        true,
        vec![sp(("r[i + 1]", Op::R, 0), ("r[i]", Op::W, 0))],
    ));

    // Static chunked schedule, clean elementwise.
    v.push(Builder::new(
        "staticchunk-no",
        Category::BarrierStructure,
        "schedule(static, 4) over an elementwise update.",
        r#"
int main(void)
{
  int i;
  float r[256];
  for (int k = 0; k < 256; k++)
    r[k] = k;
  #pragma omp parallel for schedule(static, 4)
  for (i = 0; i < 256; i++)
    r[i] = r[i] + 1.0f;
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Guided schedule on independent work.
    v.push(Builder::new(
        "guided-no",
        Category::BarrierStructure,
        "schedule(guided) over independent per-element work.",
        r#"
int main(void)
{
  int i;
  double w[192];
  for (int k = 0; k < 192; k++)
    w[k] = k;
  #pragma omp parallel for schedule(guided)
  for (i = 0; i < 192; i++)
    w[i] = w[i] * w[i] + 1.0;
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Flush-based (broken) flag signalling — still a race.
    v.push(Builder::new(
        "flush-flag-yes",
        Category::MissingSync,
        "A flag signalled with flush only: flush is not mutual exclusion.",
        r#"
int ready;
int payload;
int main(void)
{
  ready = 0;
  payload = 0;
  #pragma omp parallel
  {
    if (omp_get_thread_num() == 0) {
      payload = 42;
      #pragma omp flush
      ready = 1;
    } else {
      if (ready == 1) {
        int use;
        use = payload;
      }
    }
  }
  return 0;
}
"#,
        true,
        vec![sp(("ready", Op::W, 1), ("ready", Op::R, 0))],
    ));

    // Nested parallel treated as one level (inner serialized): clean.
    v.push(Builder::new(
        "nestedparallel-no",
        Category::Control,
        "Nested parallel regions writing thread-distinct cells.",
        r#"
int lattice[64];
int main(void)
{
  #pragma omp parallel num_threads(4)
  {
    int outer;
    outer = omp_get_thread_num();
    #pragma omp parallel num_threads(2)
    {
      lattice[outer * 2 + omp_get_thread_num() % 2] = outer;
    }
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // While-loop convergence pattern with a shared error accumulator.
    v.push(Builder::new(
        "convergence-error-yes",
        Category::Reduction,
        "Convergence loop accumulating error into a shared scalar without reduction.",
        r#"
int main(void)
{
  int i;
  double err;
  double u[128];
  for (int k = 0; k < 128; k++)
    u[k] = k * 0.01;
  err = 0.0;
  #pragma omp parallel for
  for (i = 0; i < 128; i++)
    err = err + u[i] * u[i];
  return 0;
}
"#,
        true,
        vec![sp(("err", Op::R, 0), ("err", Op::W, 1))],
    ));

    v
}

/// The three oversized kernels excluded by the 4k-token filter
/// (1 race-yes, 2 race-no — so the 198-entry subset splits 100/98 when
/// the full corpus splits 101/100).
pub fn oversized() -> Vec<Builder> {
    let mut v = Vec::new();

    // Generate a long unrolled body: hundreds of statements.
    let unrolled = |n: usize, racy: bool| -> String {
        let mut s = String::new();
        s.push_str("#include <stdio.h>\n");
        s.push_str("double field[4096];\n");
        s.push_str("int main(void)\n{\n  int i;\n");
        for k in 0..n {
            s.push_str(&format!("  field[{k}] = {k}.0 * 0.5 + {};\n", k % 7));
        }
        if racy {
            s.push_str("  #pragma omp parallel for\n");
            s.push_str("  for (i = 0; i < 4095; i++)\n");
            s.push_str("    field[i] = field[i + 1] + 1.0;\n");
        } else {
            s.push_str("  #pragma omp parallel for\n");
            s.push_str("  for (i = 0; i < 4096; i++)\n");
            s.push_str("    field[i] = field[i] + 1.0;\n");
        }
        s.push_str("  printf(\"%f\\n\", field[7]);\n  return 0;\n}\n");
        s
    };

    v.push(Builder::new(
        "oversized-unrolledinit-yes",
        Category::AntiDep,
        "An oversized kernel (unrolled initialization) with a loop-carried anti-dependence; exceeds the 4k-token prompt budget.",
        &unrolled(700, true),
        true,
        vec![sp(("field[i + 1]", Op::R, 0), ("field[i]", Op::W, 0))],
    ));

    v.push(Builder::new(
        "oversized-unrolledinit1-no",
        Category::AntiDep,
        "An oversized race-free kernel (unrolled initialization); exceeds the 4k-token prompt budget.",
        &unrolled(700, false),
        false,
        vec![],
    ));

    // A different oversized shape: many tiny parallel loops.
    let many_loops = || -> String {
        let mut s = String::new();
        s.push_str("double lanes[64][64];\n");
        s.push_str("int main(void)\n{\n");
        for k in 0..160 {
            s.push_str(&format!("  int i{k};\n"));
            s.push_str("  #pragma omp parallel for\n");
            s.push_str(&format!("  for (i{k} = 0; i{k} < 64; i{k}++)\n"));
            s.push_str(&format!("    lanes[{}][i{k}] = lanes[{}][i{k}] * 0.5 + 1.0;\n", k % 64, k % 64));
        }
        s.push_str("  return 0;\n}\n");
        s
    };

    v.push(Builder::new(
        "oversized-manyloops-no",
        Category::Control,
        "An oversized race-free kernel made of many small parallel loops; exceeds the 4k-token prompt budget.",
        &many_loops(),
        false,
        vec![],
    ));

    v
}
