//! Kernel template families.

pub mod adversarial;
pub mod barrier;
pub mod deps;
pub mod misc;
pub mod privat;
pub mod simd;
pub mod sync;
pub mod tasks;
pub mod variants;

use crate::spec::Builder;

/// Every base (non-variant, non-oversized) builder, in family order.
pub fn base_builders() -> Vec<Builder> {
    let mut v = Vec::new();
    v.extend(deps::kernels());
    v.extend(sync::kernels());
    v.extend(privat::kernels());
    v.extend(barrier::kernels());
    v.extend(tasks::kernels());
    v.extend(simd::kernels());
    v.extend(adversarial::kernels());
    v.extend(misc::kernels());
    v
}

/// Every builder including variants and the oversized trio.
pub fn all_builders() -> Vec<Builder> {
    let mut v = base_builders();
    v.extend(variants::yes_variants());
    v.extend(variants::no_variants());
    v.extend(misc::oversized());
    v
}
