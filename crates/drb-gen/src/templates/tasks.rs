//! Sections and explicit-task kernels (DRB's `sections*`, `task*`,
//! `taskdep*` families).

use crate::spec::{Builder, Category, Op, PairSpec, SideSpec};

fn sp(a: (&str, Op, usize), b: (&str, Op, usize)) -> PairSpec {
    PairSpec { first: SideSpec::nth(a.0, a.1, a.2), second: SideSpec::nth(b.0, b.1, b.2) }
}

/// All sections/tasks kernels.
pub fn kernels() -> Vec<Builder> {
    let mut v = Vec::new();

    // Sections writing the same variable.
    v.push(Builder::new(
        "sections1-orig-yes",
        Category::Sections,
        "Two concurrent sections write the same shared variable.",
        r#"
int v;
int main(void)
{
  v = 0;
  #pragma omp parallel sections
  {
    #pragma omp section
    {
      v = 1;
    }
    #pragma omp section
    {
      v = 2;
    }
  }
  return v;
}
"#,
        true,
        vec![sp(("v", Op::W, 1), ("v", Op::W, 2))],
    ));

    // Sections on disjoint data.
    v.push(Builder::new(
        "sections-disjoint-no",
        Category::Sections,
        "Sections work on different variables: no conflict.",
        r#"
int x;
int y;
int main(void)
{
  x = 0;
  y = 0;
  #pragma omp parallel sections
  {
    #pragma omp section
    {
      x = 10;
    }
    #pragma omp section
    {
      y = 20;
    }
  }
  return x + y;
}
"#,
        false,
        vec![],
    ));

    // Producer/consumer across sections (no ordering!).
    v.push(Builder::new(
        "sections-producerconsumer-yes",
        Category::Sections,
        "One section produces, the other consumes, with no synchronization between them.",
        r#"
int buf[64];
int sum;
int main(void)
{
  sum = 0;
  #pragma omp parallel sections
  {
    #pragma omp section
    {
      for (int i = 0; i < 64; i++)
        buf[i] = i;
    }
    #pragma omp section
    {
      for (int j = 0; j < 64; j++)
        sum = sum + buf[j];
    }
  }
  return sum;
}
"#,
        true,
        vec![sp(("buf[i]", Op::W, 0), ("buf[j]", Op::R, 0))],
    ));

    // Sections each updating a different array half.
    v.push(Builder::new(
        "sections-halves-no",
        Category::Sections,
        "Sections update disjoint halves of one array.",
        r#"
int data[128];
int main(void)
{
  #pragma omp parallel sections
  {
    #pragma omp section
    {
      for (int i = 0; i < 64; i++)
        data[i] = i;
    }
    #pragma omp section
    {
      for (int j = 64; j < 128; j++)
        data[j] = j * 2;
    }
  }
  return data[0];
}
"#,
        false,
        vec![],
    ).behavior(crate::spec::ToolBehavior::TripsStatic));

    // Sibling tasks updating shared state.
    v.push(Builder::new(
        "taskconflict-orig-yes",
        Category::Tasks,
        "Two sibling tasks update the same variable with no ordering.",
        r#"
int acc;
int main(void)
{
  acc = 0;
  #pragma omp parallel
  {
    #pragma omp single
    {
      #pragma omp task
      {
        acc = acc + 1;
      }
      #pragma omp task
      {
        acc = acc + 2;
      }
    }
  }
  return acc;
}
"#,
        true,
        vec![sp(("acc", Op::W, 1), ("acc", Op::W, 2))],
    ));

    // taskwait separating the siblings.
    v.push(Builder::new(
        "taskwait-orig-no",
        Category::Tasks,
        "taskwait between the two tasks orders their updates.",
        r#"
int acc;
int main(void)
{
  acc = 0;
  #pragma omp parallel
  {
    #pragma omp single
    {
      #pragma omp task
      {
        acc = acc + 1;
      }
      #pragma omp taskwait
      #pragma omp task
      {
        acc = acc + 2;
      }
    }
  }
  return acc;
}
"#,
        false,
        vec![],
    ));

    // Task vs generating thread.
    v.push(Builder::new(
        "taskvsparent-yes",
        Category::Tasks,
        "The generating thread keeps using the variable its child task writes.",
        r#"
int val;
int probe[8];
int main(void)
{
  val = 0;
  #pragma omp parallel
  {
    #pragma omp single
    {
      #pragma omp task
      {
        val = 99;
      }
      probe[0] = val;
    }
  }
  return 0;
}
"#,
        true,
        vec![sp(("val", Op::W, 1), ("val", Op::R, 0))],
    ));

    // taskwait before the parent's read.
    v.push(Builder::new(
        "taskvsparent-wait-no",
        Category::Tasks,
        "taskwait before the parent's read orders it after the child's write.",
        r#"
int val;
int probe[8];
int main(void)
{
  val = 0;
  #pragma omp parallel
  {
    #pragma omp single
    {
      #pragma omp task
      {
        val = 99;
      }
      #pragma omp taskwait
      probe[0] = val;
    }
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Tasks on disjoint array blocks.
    v.push(Builder::new(
        "taskblocks-no",
        Category::Tasks,
        "Each task initializes its own block (firstprivate block index).",
        r#"
int grid[256];
int main(void)
{
  #pragma omp parallel
  {
    #pragma omp single
    {
      int b;
      for (b = 0; b < 4; b++) {
        #pragma omp task firstprivate(b)
        {
          for (int i = 0; i < 64; i++)
            grid[b * 64 + i] = b;
        }
      }
    }
  }
  return grid[0];
}
"#,
        false,
        vec![],
    ));

    // Tasks missing firstprivate: all capture the shared loop variable.
    v.push(Builder::new(
        "taskshared-index-yes",
        Category::Tasks,
        "Tasks read the shared loop variable while the generator keeps incrementing it.",
        r#"
int grid[256];
int main(void)
{
  #pragma omp parallel
  {
    #pragma omp single
    {
      int b;
      for (b = 0; b < 4; b++) {
        #pragma omp task
        {
          grid[b] = b;
        }
      }
    }
  }
  return grid[0];
}
"#,
        true,
        vec![sp(("b", Op::R, 1), ("b", Op::W, 1))],
    )
    // The shared capture is a block-scope local of the single construct;
    // the static model privatizes region locals and misses this one.
    .behavior(crate::spec::ToolBehavior::EvadesStatic));

    // taskgroup ordering.
    v.push(Builder::new(
        "taskgroup-orig-no",
        Category::Tasks,
        "taskgroup waits for the child before the parent reads.",
        r#"
int result;
int out[4];
int main(void)
{
  result = 0;
  #pragma omp parallel
  {
    #pragma omp single
    {
      #pragma omp taskgroup
      {
        #pragma omp task
        {
          result = 5;
        }
      }
      out[0] = result;
    }
  }
  return 0;
}
"#,
        false,
        vec![],
    ));

    v
}
