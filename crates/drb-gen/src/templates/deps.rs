//! Dependence-pattern kernels: anti/true/output dependences and their
//! race-free counterparts (DRB's `antidep*`, `truedep*`, `outputdep*`,
//! `doall*` families).
//!
//! Convention: initialization loops use `k`/`m` as induction variables so
//! kernel-loop access texts (`a[i]`, `a[i + 1]`…) are unique and pair
//! specs can use occurrence 0.

use crate::spec::{Builder, Category, Op, PairSpec, SideSpec};

fn pair(first: (&str, Op), second: (&str, Op)) -> PairSpec {
    PairSpec { first: SideSpec::new(first.0, first.1), second: SideSpec::new(second.0, second.1) }
}

/// All dependence-family kernels.
pub fn kernels() -> Vec<Builder> {
    let mut v = Vec::new();

    // ---- anti-dependence (race-yes) with size variants ----
    for (tag, len) in [("orig", 1000), ("var1", 500), ("var2", 2000)] {
        v.push(Builder::new(
            &format!("antidep1-{tag}-yes"),
            Category::AntiDep,
            "A loop with loop-carried anti-dependence on array a.",
            &format!(
                r#"
#include <stdio.h>
int main(int argc, char* argv[])
{{
  int i;
  int len = {len};
  int a[{len}];
  for (int k = 0; k < len; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i] = a[i + 1] + 1;
  printf("a[50]=%d\n", a[50]);
  return 0;
}}
"#
            ),
            true,
            vec![pair(("a[i + 1]", Op::R), ("a[i]", Op::W))],
        ));
    }

    // 2D anti-dependence carried by the parallel (outer) loop. An
    // inner-dimension dependence (b[i][j+1]) would be private to each
    // outer iteration and therefore race-free; the outer offset is not.
    v.push(Builder::new(
        "antidep2-orig-yes",
        Category::AntiDep,
        "A two-dimensional loop nest with an anti-dependence carried by the parallel outer loop.",
        r#"
int main(void)
{
  int i, j;
  double b[20][20];
  for (int k = 0; k < 20; k++)
    for (int m = 0; m < 20; m++)
      b[k][m] = 1.0;
  #pragma omp parallel for private(j)
  for (i = 0; i < 19; i++)
    for (j = 0; j < 20; j++)
      b[i][j] = b[i + 1][j] * 0.5;
  return 0;
}
"#,
        true,
        vec![pair(("b[i + 1][j]", Op::R), ("b[i][j]", Op::W))],
    ));

    // ---- true dependence (race-yes) ----
    for (tag, len, stride) in [("orig", 1000, 1), ("var1", 100, 1)] {
        v.push(Builder::new(
            &format!("truedep1-{tag}-yes"),
            Category::TrueDep,
            "A loop with loop-carried true dependence: a[i+1] depends on a[i].",
            &format!(
                r#"
int main(void)
{{
  int i;
  int len = {len};
  int a[{len}];
  for (int k = 0; k < len; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < len - {stride}; i++)
    a[i + {stride}] = a[i] + 1;
  return 0;
}}
"#
            ),
            true,
            vec![PairSpec {
                first: SideSpec::new("a[i]", Op::R),
                second: SideSpec::new(format!("a[i + {stride}]"), Op::W),
            }],
        ));
    }

    // True dependence at distance 4 — races only across chunk boundaries.
    v.push(Builder::new(
        "truedep-distance4-var-yes",
        Category::TrueDep,
        "True dependence at constant distance 4; still loop-carried and racy under worksharing.",
        r#"
int main(void)
{
  int i;
  double x[256];
  for (int k = 0; k < 256; k++)
    x[k] = 0.5 * k;
  #pragma omp parallel for
  for (i = 0; i < 252; i++)
    x[i + 4] = x[i] * 2.0;
  return 0;
}
"#,
        true,
        vec![pair(("x[i]", Op::R), ("x[i + 4]", Op::W))],
    ));

    // ---- output dependence (race-yes) ----
    v.push(Builder::new(
        "outputdep1-orig-yes",
        Category::OutputDep,
        "Every iteration writes the same shared scalar: output dependence (and a read of it afterwards).",
        r#"
#include <stdio.h>
int main(void)
{
  int i;
  int x;
  int len = 100;
  x = 0;
  #pragma omp parallel for
  for (i = 0; i < len; i++)
    x = i;
  printf("x=%d\n", x);
  return 0;
}
"#,
        true,
        vec![PairSpec {
            first: SideSpec::nth("x", Op::W, 1),
            second: SideSpec::nth("x", Op::W, 1),
        }],
    ));

    v.push(Builder::new(
        "outputdep2-var-yes",
        Category::OutputDep,
        "Conditional writes to one shared element create an output dependence across iterations.",
        r#"
int main(void)
{
  int i;
  int a[128];
  int last;
  for (int k = 0; k < 128; k++)
    a[k] = k % 7;
  last = -1;
  #pragma omp parallel for
  for (i = 0; i < 128; i++)
    if (a[i] == 0)
      last = i;
  return last;
}
"#,
        true,
        vec![PairSpec {
            first: SideSpec::nth("last", Op::W, 1),
            second: SideSpec::nth("last", Op::W, 1),
        }],
    ));

    // ---- race-free doall counterparts ----
    for (tag, len) in [("orig", 1000), ("var1", 100), ("var2", 4096)] {
        v.push(Builder::new(
            &format!("doall1-{tag}-no"),
            Category::AntiDep,
            "Element-wise update with no loop-carried dependence.",
            &format!(
                r#"
int main(void)
{{
  int i;
  int a[{len}];
  for (int k = 0; k < {len}; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < {len}; i++)
    a[i] = a[i] + 1;
  return 0;
}}
"#
            ),
            false,
            vec![],
        ));
    }

    v.push(Builder::new(
        "doall2-orig-no",
        Category::AntiDep,
        "Two arrays, disjoint roles: reads from b, writes to a.",
        r#"
int main(void)
{
  int i;
  double a[500];
  double b[500];
  for (int k = 0; k < 500; k++)
    b[k] = k * 0.5;
  #pragma omp parallel for
  for (i = 0; i < 500; i++)
    a[i] = b[i] * 2.0;
  return 0;
}
"#,
        false,
        vec![],
    ));

    v.push(Builder::new(
        "doall-offset-read-no",
        Category::TrueDep,
        "Reads a[i+1] but writes a different array: the offset read is harmless.",
        r#"
int main(void)
{
  int i;
  int a[257];
  int c[256];
  for (int k = 0; k < 257; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 256; i++)
    c[i] = a[i + 1];
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Disjoint strided accesses: GCD-provable independence.
    v.push(Builder::new(
        "stride2-disjoint-no",
        Category::AntiDep,
        "Write a[2*i], read a[2*i+1]: even/odd elements never collide.",
        r#"
int main(void)
{
  int i;
  int a[512];
  for (int k = 0; k < 512; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 256; i++)
    a[2 * i] = a[2 * i + 1] + 1;
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Strided racy variant: overlapping strides.
    v.push(Builder::new(
        "stride-overlap-yes",
        Category::AntiDep,
        "Write a[2*i], read a[i+64]: ranges overlap, dependences are carried.",
        r#"
int main(void)
{
  int i;
  int a[256];
  for (int k = 0; k < 256; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < 96; i++)
    a[2 * i] = a[i + 64] + 1;
  return 0;
}
"#,
        true,
        vec![pair(("a[i + 64]", Op::R), ("a[2 * i]", Op::W))],
    ));

    // Reversed loop with true dependence.
    v.push(Builder::new(
        "truedep-reverse-var-yes",
        Category::TrueDep,
        "Descending loop with a carried dependence a[i-1] -> a[i].",
        r#"
int main(void)
{
  int i;
  int a[300];
  for (int k = 0; k < 300; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 299; i > 0; i--)
    a[i - 1] = a[i] + 1;
  return 0;
}
"#,
        true,
        vec![pair(("a[i]", Op::R), ("a[i - 1]", Op::W))],
    ));

    // Triangular loop, race-free (each (i,j) writes its own cell).
    v.push(Builder::new(
        "triangular-no",
        Category::Stencil,
        "Triangular nest writing distinct cells per outer iteration.",
        r#"
int main(void)
{
  int i, j;
  double t[40][40];
  for (int k = 0; k < 40; k++)
    for (int m = 0; m < 40; m++)
      t[k][m] = 0.0;
  #pragma omp parallel for private(j)
  for (i = 0; i < 40; i++)
    for (j = 0; j <= i; j++)
      t[i][j] = i + j;
  return 0;
}
"#,
        false,
        vec![],
    ));

    // Prefix-sum style recurrence (classic unparallelizable loop).
    v.push(Builder::new(
        "prefixsum-yes",
        Category::TrueDep,
        "Prefix sum recurrence parallelized incorrectly.",
        r#"
int main(void)
{
  int i;
  double s[400];
  for (int k = 0; k < 400; k++)
    s[k] = 1.0;
  #pragma omp parallel for
  for (i = 1; i < 400; i++)
    s[i] = s[i - 1] + s[i];
  return 0;
}
"#,
        true,
        vec![pair(("s[i - 1]", Op::R), ("s[i]", Op::W))],
    ));

    // Gather with bounded offsets, race-free.
    v.push(Builder::new(
        "gather-separate-no",
        Category::Stencil,
        "Gather from a read-only array into a private output row.",
        r#"
int main(void)
{
  int i;
  double src[300];
  double dst[300];
  for (int k = 0; k < 300; k++)
    src[k] = k * 0.25;
  #pragma omp parallel for
  for (i = 1; i < 299; i++)
    dst[i] = src[i - 1] + src[i] + src[i + 1];
  return 0;
}
"#,
        false,
        vec![],
    ));

    v
}
