//! Label-preserving corpus augmentation (paper §5: "expanding DRB-ML to
//! include more data items using data scraping and augmentation
//! techniques").
//!
//! Three mutators, all verified label-preserving:
//!
//! * **α-rename** — consistently rename every program variable; racy
//!   pairs are remapped by access-index correspondence (the AST shape is
//!   unchanged, so access *k* of the mutant is access *k* of the
//!   original).
//! * **reformat** — re-print the AST through the canonical printer
//!   (whitespace/layout changes); labels re-resolved the same way.
//! * **comment noise** — inject decoy comments into the raw code; the
//!   trimmed code (which labels refer to) is untouched.

use crate::spec::{Kernel, VarPair};
use minic::ast::*;
use minic::pragma::{Clause, DirectiveKind};
use std::collections::HashMap;

// Deterministic mixer for augmentation choices — the shared
// implementation is stream-identical to the inline one it replaced, so
// augmented corpora regenerate byte-for-byte.
use par::rng::mix;

/// Names that must never be renamed.
fn is_reserved(name: &str) -> bool {
    name.starts_with("omp_")
        || matches!(name, "main" | "printf" | "malloc" | "calloc" | "free" | "argc" | "argv")
}

/// Collect every renameable variable in declaration order.
///
/// Public so other mutation subsystems (the `xcheck` differential
/// harness) can reuse the exact rename machinery the augmenter is
/// validated with; reserved names (`main`, `omp_*`, libc) are skipped.
pub fn collect_names(unit: &TranslationUnit) -> Vec<String> {
    let mut names = Vec::new();
    let mut push = |n: &str| {
        if !is_reserved(n) && !names.iter().any(|x| x == n) {
            names.push(n.to_string());
        }
    };
    fn stmt(s: &Stmt, push: &mut dyn FnMut(&str)) {
        match s {
            Stmt::Decl(d) => {
                for v in &d.vars {
                    push(&v.name);
                }
            }
            Stmt::Block(b) => b.stmts.iter().for_each(|s| stmt(s, push)),
            Stmt::If { then, els, .. } => {
                stmt(then, push);
                if let Some(e) = els {
                    stmt(e, push);
                }
            }
            Stmt::For(f) => {
                if let ForInit::Decl(d) = &f.init {
                    for v in &d.vars {
                        push(&v.name);
                    }
                }
                stmt(&f.body, push);
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => stmt(body, push),
            Stmt::Omp { body: Some(b), .. } => stmt(b, push),
            _ => {}
        }
    }
    for item in &unit.items {
        match item {
            Item::Global(d) => {
                for v in &d.vars {
                    push(&v.name);
                }
            }
            Item::Func(f) => {
                for p in &f.params {
                    push(&p.name);
                }
                f.body.stmts.iter().for_each(|s| stmt(s, &mut push));
            }
            Item::Pragma(_) => {}
        }
    }
    names
}

/// Apply a rename map everywhere a variable name can occur: idents,
/// declarators, clause variable lists, `threadprivate`/`flush` lists.
pub fn rename_unit(unit: &mut TranslationUnit, map: &HashMap<String, String>) {
    let ren = |n: &mut String| {
        if let Some(new) = map.get(n.as_str()) {
            *n = new.clone();
        }
    };
    fn expr(e: &mut Expr, map: &HashMap<String, String>) {
        match e {
            Expr::Ident { name, .. } => {
                if let Some(n) = map.get(name.as_str()) {
                    *name = n.clone();
                }
            }
            Expr::Index { base, index, .. } => {
                expr(base, map);
                expr(index, map);
            }
            Expr::Call { args, .. } => args.iter_mut().for_each(|a| expr(a, map)),
            Expr::Unary { expr: x, .. } | Expr::Cast { expr: x, .. } | Expr::IncDec { expr: x, .. } => {
                expr(x, map)
            }
            Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
                expr(lhs, map);
                expr(rhs, map);
            }
            Expr::Cond { cond, then, els, .. } => {
                expr(cond, map);
                expr(then, map);
                expr(els, map);
            }
            _ => {}
        }
    }
    fn decl(d: &mut Decl, map: &HashMap<String, String>) {
        for v in &mut d.vars {
            if let Some(n) = map.get(v.name.as_str()) {
                v.name = n.clone();
            }
            for dim in v.ty.dims.iter_mut().flatten() {
                expr(dim, map);
            }
            match &mut v.init {
                Some(Init::Expr(e)) => expr(e, map),
                Some(Init::List(es)) => es.iter_mut().for_each(|e| expr(e, map)),
                None => {}
            }
        }
    }
    fn clause_names(c: &mut Clause, map: &HashMap<String, String>) {
        let lists: &mut Vec<String> = match c {
            Clause::Private(v)
            | Clause::Firstprivate(v)
            | Clause::Lastprivate(v)
            | Clause::Shared(v)
            | Clause::Linear(v) => v,
            Clause::Reduction(_, v) => v,
            Clause::Depend(_, v) => v,
            Clause::Schedule(_, Some(e)) => {
                expr(e, map);
                return;
            }
            Clause::NumThreads(e) | Clause::If(e) => {
                expr(e, map);
                return;
            }
            _ => return,
        };
        for n in lists {
            if let Some(new) = map.get(n.as_str()) {
                *n = new.clone();
            }
        }
    }
    fn stmt(s: &mut Stmt, map: &HashMap<String, String>) {
        match s {
            Stmt::Decl(d) => decl(d, map),
            Stmt::Expr(e) => expr(e, map),
            Stmt::Block(b) => b.stmts.iter_mut().for_each(|s| stmt(s, map)),
            Stmt::If { cond, then, els, .. } => {
                expr(cond, map);
                stmt(then, map);
                if let Some(e) = els {
                    stmt(e, map);
                }
            }
            Stmt::For(f) => {
                match &mut f.init {
                    ForInit::Decl(d) => decl(d, map),
                    ForInit::Expr(e) => expr(e, map),
                    ForInit::Empty => {}
                }
                if let Some(c) = &mut f.cond {
                    expr(c, map);
                }
                if let Some(st) = &mut f.step {
                    expr(st, map);
                }
                stmt(&mut f.body, map);
            }
            Stmt::While { cond, body, .. } => {
                expr(cond, map);
                stmt(body, map);
            }
            Stmt::DoWhile { body, cond, .. } => {
                stmt(body, map);
                expr(cond, map);
            }
            Stmt::Return(Some(e), _) => expr(e, map),
            Stmt::Omp { dir, body, .. } => {
                for c in &mut dir.clauses {
                    clause_names(c, map);
                }
                if let DirectiveKind::Threadprivate(vs) | DirectiveKind::Flush(vs) = &mut dir.kind
                {
                    for n in vs {
                        if let Some(new) = map.get(n.as_str()) {
                            *n = new.clone();
                        }
                    }
                }
                if let Some(b) = body {
                    stmt(b, map);
                }
            }
            _ => {}
        }
    }
    for item in &mut unit.items {
        match item {
            Item::Global(d) => decl(d, map),
            Item::Func(f) => {
                for p in &mut f.params {
                    ren(&mut p.name);
                }
                f.body.stmts.iter_mut().for_each(|s| stmt(s, map));
            }
            Item::Pragma(d) => {
                if let DirectiveKind::Threadprivate(vs) = &mut d.kind {
                    for n in vs {
                        if let Some(new) = map.get(n.as_str()) {
                            *n = new.clone();
                        }
                    }
                }
            }
        }
    }
}

/// Remap the kernel's racy pairs onto a structurally-identical mutant by
/// access-index correspondence.
fn remap_pairs(orig_code: &str, orig_pairs: &[VarPair], new_code: &str) -> Option<Vec<VarPair>> {
    let collect = |code: &str| -> Option<Vec<depend::Access>> {
        let u = minic::parse(code).ok()?;
        let mut out = Vec::new();
        for item in &u.items {
            if let Item::Func(f) = item {
                out.extend(depend::accesses_of_block(&f.body));
            }
        }
        Some(out)
    };
    let old = collect(orig_code)?;
    let new = collect(new_code)?;
    if old.len() != new.len() {
        return None;
    }
    let index_of = |text: &str, line: u32, col: u32| {
        old.iter()
            .position(|a| a.text == text && a.span.line() == line && a.span.col() == col)
    };
    let mut pairs = Vec::with_capacity(orig_pairs.len());
    for p in orig_pairs {
        let i0 = index_of(&p.names.0, p.lines.0, p.cols.0)?;
        let i1 = index_of(&p.names.1, p.lines.1, p.cols.1)?;
        let (a, b) = (&new[i0], &new[i1]);
        pairs.push(VarPair {
            names: (a.text.clone(), b.text.clone()),
            lines: (a.span.line(), b.span.line()),
            cols: (a.span.col(), b.span.col()),
            ops: p.ops,
        });
    }
    Some(pairs)
}

/// One augmentation flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// α-rename every variable.
    Rename,
    /// Re-print through the canonical printer.
    Reformat,
    /// Inject decoy comments into the raw code (trimmed code untouched).
    CommentNoise,
}

impl Mutation {
    /// All flavours.
    pub const ALL: [Mutation; 3] = [Mutation::Rename, Mutation::Reformat, Mutation::CommentNoise];
}

/// Apply one mutation, producing a new kernel with remapped labels, or
/// `None` when the mutation cannot preserve labels for this kernel.
pub fn mutate(k: &Kernel, m: Mutation, seed: u64) -> Option<Kernel> {
    match m {
        Mutation::CommentNoise => {
            let decoys = [
                "// TODO: tune the chunk size",
                "/* reviewed: looks fine */",
                "// NB: hot loop",
                "/* do not reorder */",
            ];
            let mut out = String::new();
            for (i, line) in k.code.lines().enumerate() {
                out.push_str(line);
                out.push('\n');
                if mix(seed, i as u64).is_multiple_of(5) {
                    out.push_str(decoys[(mix(seed, i as u64 + 1000) % 4) as usize]);
                    out.push('\n');
                }
            }
            let trimmed = minic::trim_comments(&out);
            // Labels refer to trimmed code, which must be unchanged.
            if trimmed.code != k.trimmed_code {
                return None;
            }
            Some(Kernel {
                name: k.name.replace(".c", "-aug-comments.c"),
                code: out,
                ..k.clone()
            })
        }
        Mutation::Reformat => {
            let unit = minic::parse(&k.trimmed_code).ok()?;
            let printed = minic::print_unit(&unit);
            let trimmed = minic::trim_comments(&printed);
            let pairs = remap_pairs(&k.trimmed_code, &k.pairs, &trimmed.code)?;
            Some(Kernel {
                name: k.name.replace(".c", "-aug-reformat.c"),
                code: printed.clone(),
                trimmed_code: trimmed.code,
                pairs,
                ..k.clone()
            })
        }
        Mutation::Rename => {
            let mut unit = minic::parse(&k.trimmed_code).ok()?;
            let names = collect_names(&unit);
            let map: HashMap<String, String> = names
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    (n.clone(), format!("v{}_{n}", mix(seed, i as u64) % 97))
                })
                .collect();
            rename_unit(&mut unit, &map);
            let printed = minic::print_unit(&unit);
            let trimmed = minic::trim_comments(&printed);
            // Reparse to be sure the mutant is still valid.
            minic::parse(&trimmed.code).ok()?;
            let pairs = remap_pairs(&k.trimmed_code, &k.pairs, &trimmed.code)?;
            Some(Kernel {
                name: k.name.replace(".c", "-aug-rename.c"),
                code: printed.clone(),
                trimmed_code: trimmed.code,
                pairs,
                ..k.clone()
            })
        }
    }
}

/// Expand a kernel into up to three label-preserving variants.
pub fn augment(k: &Kernel, seed: u64) -> Vec<Kernel> {
    Mutation::ALL.iter().filter_map(|m| mutate(k, *m, seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus;

    #[test]
    fn rename_preserves_race_and_remaps_pairs() {
        let k = corpus::corpus().iter().find(|k| k.race).unwrap();
        let m = mutate(k, Mutation::Rename, 42).expect("renameable");
        assert_ne!(m.trimmed_code, k.trimmed_code);
        assert_eq!(m.pairs.len(), k.pairs.len());
        // The renamed pair text exists in the mutant code.
        let root: String = m.pairs[0]
            .names
            .0
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        assert!(m.trimmed_code.contains(&root), "{root} not in mutant");
    }

    #[test]
    fn comment_noise_keeps_trimmed_code() {
        let k = &corpus::corpus()[0];
        let m = mutate(k, Mutation::CommentNoise, 7).expect("comment noise applies");
        assert_eq!(m.trimmed_code, k.trimmed_code);
        assert_ne!(m.code, k.code);
        assert_eq!(m.pairs, k.pairs);
    }

    #[test]
    fn reformat_reresolves_lines() {
        let k = corpus::corpus().iter().find(|k| k.race).unwrap();
        let m = mutate(k, Mutation::Reformat, 1).expect("reformat applies");
        // Pair lines point into the reformatted text.
        let lines: Vec<&str> = m.trimmed_code.lines().collect();
        for p in &m.pairs {
            assert!((p.lines.0 as usize) <= lines.len());
        }
    }

    #[test]
    fn augmentation_is_deterministic() {
        let k = &corpus::corpus()[2];
        let a = augment(k, 9);
        let b = augment(k, 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.trimmed_code, y.trimmed_code);
        }
    }

    #[test]
    fn corpus_augments_broadly() {
        let mut produced = 0;
        for k in corpus::corpus().iter().step_by(7) {
            produced += augment(k, 13).len();
        }
        // At least two mutants per sampled kernel on average.
        assert!(produced >= corpus::corpus().iter().step_by(7).count() * 2, "{produced}");
    }
}
