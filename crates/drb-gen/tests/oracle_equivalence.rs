//! The epoch fast path must be **observationally identical** to the
//! reference full-vector-clock analyzer on the entire corpus: same
//! `DynReport` (races, sites, order) for every kernel × schedule seed,
//! and the parallel adversarial sweep must not depend on worker count.

use drb_gen::{corpus, Kernel, ToolBehavior};
use hbsan::{analyze, analyze_reference, Config};

const SEEDS: [u64; 3] = [1, 7, 23];

#[test]
fn epoch_path_matches_reference_on_every_corpus_kernel() {
    let mut compared = 0usize;
    let mismatches: Vec<String> = par::par_map(corpus(), par::default_workers(), |k| {
        let Ok(unit) = minic::parse(&k.trimmed_code) else {
            return Vec::new();
        };
        let mut bad = Vec::new();
        for seed in SEEDS {
            let cfg = Config { seed, ..Config::default() };
            let Ok(out) = hbsan::run(&unit, &cfg) else {
                // Unmodeled kernels may fail at runtime; equivalence is
                // about analyses of traces that exist.
                continue;
            };
            let epoch = analyze(&out.trace);
            let reference = analyze_reference(&out.trace);
            if epoch != reference {
                bad.push(format!(
                    "{} seed {seed}: epoch {:?} != reference {:?}",
                    k.name,
                    epoch.pair_signatures(),
                    reference.pair_signatures()
                ));
            }
            if epoch.pair_signatures() != reference.pair_signatures() {
                bad.push(format!("{} seed {seed}: pair signatures diverge", k.name));
            }
        }
        bad
    })
    .into_iter()
    .inspect(|_| compared += 1)
    .flatten()
    .collect();
    assert!(compared > 150, "only {compared} kernels compared");
    assert!(
        mismatches.is_empty(),
        "{} oracle divergences:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn adversarial_sweep_worker_count_invariant_across_corpus() {
    let kernels: Vec<&Kernel> = corpus()
        .iter()
        .filter(|k| k.behavior != ToolBehavior::DynUnmodeled)
        .collect();
    let diffs: Vec<String> = par::par_map(&kernels, par::default_workers(), |k| {
        let unit = minic::parse(&k.trimmed_code).ok()?;
        let cfg = Config::default();
        let serial = hbsan::check_adversarial_with_workers(&unit, &cfg, &SEEDS, 1);
        let parallel = hbsan::check_adversarial_with_workers(&unit, &cfg, &SEEDS, 4);
        match (serial, parallel) {
            (Ok(a), Ok(b)) if a == b => None,
            (Err(ea), Err(eb)) if ea == eb => None,
            (a, b) => Some(format!("{}: workers=1 {a:?} vs workers=4 {b:?}", k.name)),
        }
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(diffs.is_empty(), "sweep depends on workers:\n{}", diffs.join("\n"));
}
