//! Ground-truth validation: every kernel's race label must agree with
//! the dynamic happens-before checker (the oracle), modulo the
//! explicitly-marked unmodeled kernels; and the static detector's
//! failures must be exactly the kernels designed to defeat it.

use drb_gen::{corpus, Kernel, ToolBehavior};
use hbsan::Config;

fn dynamic_verdict(k: &Kernel) -> Result<bool, String> {
    let unit = minic::parse(&k.trimmed_code).map_err(|e| format!("{}: {e}", k.name))?;
    let report = hbsan::check_adversarial(&unit, &Config::default(), &[1, 7, 23])
        .map_err(|e| format!("{}: {e}", k.name))?;
    Ok(report.has_race())
}

#[test]
fn dynamic_checker_agrees_with_labels() {
    let mut failures = Vec::new();
    for k in corpus() {
        if k.behavior == ToolBehavior::DynUnmodeled {
            continue;
        }
        match dynamic_verdict(k) {
            Ok(found) => {
                if found != k.race {
                    failures.push(format!(
                        "{}: label={} hbsan={}",
                        k.name, k.race, found
                    ));
                }
            }
            Err(e) => failures.push(format!("{}: runtime error: {e}", k.name)),
        }
    }
    assert!(
        failures.is_empty(),
        "{} ground-truth mismatches:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn every_kernel_executes_without_runtime_error() {
    for k in corpus() {
        let unit = minic::parse(&k.trimmed_code).unwrap();
        hbsan::run(&unit, &Config::default())
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
    }
}

#[test]
fn static_detector_failures_match_design() {
    let mut unexpected = Vec::new();
    for k in corpus() {
        let report = racecheck::check_source(&k.trimmed_code)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let found = report.has_race();
        match k.behavior {
            ToolBehavior::EvadesStatic => {
                // Designed false negative.
                if found {
                    unexpected.push(format!("{}: expected static FN but race found", k.name));
                }
            }
            ToolBehavior::TripsStatic => {
                // Designed false positive.
                if !found {
                    unexpected
                        .push(format!("{}: expected static FP but no race reported", k.name));
                }
            }
            ToolBehavior::Standard | ToolBehavior::DynUnmodeled => {
                if found != k.race {
                    unexpected.push(format!(
                        "{}: label={} static={} (behavior Standard)",
                        k.name, k.race, found
                    ));
                }
            }
        }
    }
    assert!(
        unexpected.is_empty(),
        "{} static-detector surprises:\n{}",
        unexpected.len(),
        unexpected.join("\n")
    );
}

#[test]
fn augmented_kernels_preserve_labels_under_the_oracle() {
    // Sampled sweep: every mutant's dynamic verdict matches the
    // original's ground-truth label.
    let mut checked = 0;
    for k in corpus().iter().step_by(11) {
        if k.behavior == ToolBehavior::DynUnmodeled {
            continue;
        }
        for m in drb_gen::augment(k, 99) {
            let unit = minic::parse(&m.trimmed_code)
                .unwrap_or_else(|e| panic!("{}: {e}", m.name));
            let verdict = hbsan::check_adversarial(&unit, &Config::default(), &[1, 7])
                .unwrap_or_else(|e| panic!("{}: {e}", m.name))
                .has_race();
            assert_eq!(verdict, m.race, "{}", m.name);
            checked += 1;
        }
    }
    assert!(checked > 30, "only {checked} mutants validated");
}
