//! Ground-truth validation: every kernel's race label must agree with
//! the dynamic happens-before checker (the oracle), modulo the
//! explicitly-marked unmodeled kernels; and the static detector's
//! failures must be exactly the kernels designed to defeat it.
//!
//! The per-kernel sweeps fan out over `par::par_map` (honoring
//! `RACELLM_WORKERS`); failure lists are collected in corpus order, so
//! output is worker-count independent.

use drb_gen::{corpus, Kernel, ToolBehavior};
use hbsan::Config;

fn dynamic_verdict(k: &Kernel) -> Result<bool, String> {
    let unit = minic::parse(&k.trimmed_code).map_err(|e| format!("{}: {e}", k.name))?;
    let report = hbsan::check_adversarial(&unit, &Config::default(), &[1, 7, 23])
        .map_err(|e| format!("{}: {e}", k.name))?;
    Ok(report.has_race())
}

#[test]
fn dynamic_checker_agrees_with_labels() {
    let kernels: Vec<&Kernel> = corpus()
        .iter()
        .filter(|k| k.behavior != ToolBehavior::DynUnmodeled)
        .collect();
    let failures: Vec<String> = par::par_map(&kernels, par::default_workers(), |k| {
        match dynamic_verdict(k) {
            Ok(found) if found != k.race => {
                Some(format!("{}: label={} hbsan={}", k.name, k.race, found))
            }
            Ok(_) => None,
            Err(e) => Some(format!("{}: runtime error: {e}", k.name)),
        }
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} ground-truth mismatches:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn every_kernel_executes_without_runtime_error() {
    let errors: Vec<String> = par::par_map(corpus(), par::default_workers(), |k| {
        let unit = minic::parse(&k.trimmed_code).unwrap();
        hbsan::run(&unit, &Config::default())
            .err()
            .map(|e| format!("{}: {e}", k.name))
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(errors.is_empty(), "runtime errors:\n{}", errors.join("\n"));
}

#[test]
fn static_detector_failures_match_design() {
    let unexpected: Vec<String> = par::par_map(corpus(), par::default_workers(), |k| {
        let report = racecheck::check_source(&k.trimmed_code)
            .unwrap_or_else(|e| panic!("{}: {e}", k.name));
        let found = report.has_race();
        match k.behavior {
            ToolBehavior::EvadesStatic => {
                // Designed false negative.
                found.then(|| format!("{}: expected static FN but race found", k.name))
            }
            ToolBehavior::TripsStatic => {
                // Designed false positive.
                (!found).then(|| format!("{}: expected static FP but no race reported", k.name))
            }
            ToolBehavior::Standard | ToolBehavior::DynUnmodeled => (found != k.race)
                .then(|| {
                    format!("{}: label={} static={} (behavior Standard)", k.name, k.race, found)
                }),
        }
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        unexpected.is_empty(),
        "{} static-detector surprises:\n{}",
        unexpected.len(),
        unexpected.join("\n")
    );
}

#[test]
fn augmented_kernels_preserve_labels_under_the_oracle() {
    // Sampled sweep: every mutant's dynamic verdict matches the
    // original's ground-truth label.
    let sampled: Vec<&Kernel> = corpus()
        .iter()
        .step_by(11)
        .filter(|k| k.behavior != ToolBehavior::DynUnmodeled)
        .collect();
    let counts = par::par_map(&sampled, par::default_workers(), |k| {
        let mut checked = 0usize;
        for m in drb_gen::augment(k, 99) {
            let unit = minic::parse(&m.trimmed_code)
                .unwrap_or_else(|e| panic!("{}: {e}", m.name));
            let verdict = hbsan::check_adversarial(&unit, &Config::default(), &[1, 7])
                .unwrap_or_else(|e| panic!("{}: {e}", m.name))
                .has_race();
            assert_eq!(verdict, m.race, "{}", m.name);
            checked += 1;
        }
        checked
    });
    let checked: usize = counts.iter().sum();
    assert!(checked > 30, "only {checked} mutants validated");
}
