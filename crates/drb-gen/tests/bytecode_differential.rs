//! The bytecode executor must be **observationally identical** to the
//! AST interpreter on the entire corpus: for every kernel × schedule
//! seed where lowering succeeds, `run_program` must produce the same
//! trace (event order, interned sites, raw heap addresses), the same
//! printed lines, exit code, and schedule-sensitivity flag — and it
//! must err exactly where the interpreter errs. On top of the raw runs,
//! the compiled adversarial sweep must merge to the same `DynReport`
//! (byte-for-byte, including the epoch interpreter and the reference
//! analyzer) as the interpreter-only sweep.

use drb_gen::corpus;
use hbsan::{analyze, analyze_reference, Config};

const SEEDS: [u64; 3] = [1, 7, 23];

#[test]
fn bytecode_matches_interpreter_on_every_corpus_kernel() {
    let mut lowered = 0usize;
    let mut rejected = 0usize;
    let results: Vec<(bool, Vec<String>)> =
        par::par_map(corpus(), par::default_workers(), |k| {
            let Ok(unit) = minic::parse(&k.trimmed_code) else {
                return (false, Vec::new());
            };
            let prog = match hbsan::lower(&unit) {
                Ok(p) => p,
                Err(_) => return (false, Vec::new()),
            };
            let mut bad = Vec::new();
            for seed in SEEDS {
                let cfg = Config { seed, ..Config::default() };
                let fast = hbsan::run_program(&prog, &cfg);
                let slow = hbsan::run(&unit, &cfg);
                match (fast, slow) {
                    (Ok(f), Ok(s)) => {
                        if f.trace != s.trace {
                            bad.push(format!("{} seed {seed}: trace diverges", k.name));
                        }
                        if f.printed != s.printed {
                            bad.push(format!(
                                "{} seed {seed}: printed {:?} != {:?}",
                                k.name, f.printed, s.printed
                            ));
                        }
                        if f.exit != s.exit {
                            bad.push(format!(
                                "{} seed {seed}: exit {:?} != {:?}",
                                k.name, f.exit, s.exit
                            ));
                        }
                        if f.schedule_sensitive != s.schedule_sensitive {
                            bad.push(format!("{} seed {seed}: schedule_sensitive flag", k.name));
                        }
                        let fr = analyze(&f.trace);
                        if fr != analyze(&s.trace) {
                            bad.push(format!("{} seed {seed}: DynReport diverges", k.name));
                        }
                        if fr != analyze_reference(&f.trace) {
                            bad.push(format!("{} seed {seed}: reference analyzer", k.name));
                        }
                    }
                    // Errors must coincide (messages may differ; the
                    // fallback path reruns the interpreter and reports
                    // its error text).
                    (Err(_), Err(_)) => {}
                    (Ok(_), Err(e)) => {
                        bad.push(format!("{} seed {seed}: exec ok, interp err {e:?}", k.name))
                    }
                    (Err(e), Ok(_)) => {
                        bad.push(format!("{} seed {seed}: exec err {e:?}, interp ok", k.name))
                    }
                }
            }
            (true, bad)
        });
    let mut mismatches = Vec::new();
    for (low, bad) in results {
        if low {
            lowered += 1;
        } else {
            rejected += 1;
        }
        mismatches.extend(bad);
    }
    assert!(
        mismatches.is_empty(),
        "{} bytecode divergences:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
    // The fast path must cover the bulk of the corpus to be worth
    // anything; rejection is allowed (sections/single/tasks) but must
    // stay the exception.
    assert!(lowered >= 150, "only {lowered} of {} kernels lowered ({rejected} rejected)", lowered + rejected);
}

#[test]
fn compiled_sweep_matches_interpreter_sweep_on_every_corpus_kernel() {
    let diffs: Vec<String> = par::par_map(corpus(), par::default_workers(), |k| {
        let unit = minic::parse(&k.trimmed_code).ok()?;
        let prog = hbsan::lower(&unit).ok();
        let cfg = Config::default();
        let compiled = hbsan::check_adversarial_compiled(&unit, prog.as_ref(), &cfg, &SEEDS);
        let reference = hbsan::check_adversarial(&unit, &cfg, &SEEDS);
        match (compiled, reference) {
            (Ok(c), Ok(r)) if c.report == r => None,
            (Err(ec), Err(er)) if ec == er => None,
            (c, r) => Some(format!("{}: compiled {c:?} vs interp {r:?}", k.name)),
        }
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(diffs.is_empty(), "compiled sweep diverges:\n{}", diffs.join("\n"));
}
