//! Fine-tuning demo: QLoRA-style adapter training on one CV fold,
//! before/after metrics (the §3.4 / Table 4 machinery in miniature).
//!
//!     cargo run --release -p racellm --example finetune_demo

use racellm::{drb_ml, eval, finetune, llm};

fn main() {
    let views = drb_ml::Dataset::generate().subset_views();
    let model = llm::ModelKind::StarChatBeta;
    finetune::check_finetunable(model).expect("open-weight model");

    let surrogate = llm::Surrogate::new(model, &views);
    let folds = finetune::folds_for(&views, 5, 20230915);
    let cfg = finetune::TrainConfig::for_model(model);

    println!("Model: {} | folds: {} | config: {cfg:?}\n", model.name(), folds.len());

    for (i, fold) in folds.iter().enumerate() {
        let train: Vec<llm::KernelView> = fold.train.iter().map(|&j| views[j].clone()).collect();
        let ft = finetune::FineTuned::train(&surrogate, &train, &cfg);

        let mut base = eval::Confusion::default();
        let mut tuned = eval::Confusion::default();
        for &j in &fold.test {
            let k = &views[j];
            base.record(k.race, surrogate.predict(k, llm::PromptStrategy::P1));
            tuned.record(k.race, ft.predict(&surrogate, k));
        }
        println!("fold {i}: base  {base}");
        println!("        tuned {tuned}");
    }

    println!("\nFull Table 4:");
    println!("{}", eval::format_cv_table("", &eval::table4()));
}
