//! Quickstart: the paper's Figure-1 pipeline end to end on one snippet.
//!
//!     cargo run --release -p racellm --example quickstart

use racellm::Pipeline;

fn main() {
    let source = r#"
/*
A loop with loop-carried anti-dependence (DRB001-style).
*/
#include <stdio.h>
int main(int argc, char* argv[])
{
  int i;
  int len = 1000;
  int a[1000];
  for (int k = 0; k < len; k++)
    a[k] = k;
  #pragma omp parallel for
  for (i = 0; i < len - 1; i++)
    a[i] = a[i + 1] + 1;
  printf("a[500]=%d\n", a[500]);
  return 0;
}
"#;

    println!("Building the pipeline (corpus → DRB-ML → calibrated surrogates)…");
    let pipeline = Pipeline::new();

    println!("\nAnalyzing the snippet with every tool in the workspace:\n");
    let report = pipeline.analyze(source).expect("snippet parses");

    println!("tokens (trimmed): {}", report.tokens);
    println!("\nstatic detector : race = {}", report.static_verdict);
    for r in &report.static_races {
        println!("  {r}");
    }
    println!("\ndynamic checker : race = {}", report.dynamic_verdict);
    for r in report.dynamic_races.iter().take(3) {
        println!("  {r}");
    }
    println!("\nLLM surrogates (feature-based, p1-style):");
    for (model, text, verdict) in &report.llm_answers {
        println!("  {model:4} → {:?}: {text}", verdict);
    }

    println!("\nCalibrated benchmark numbers (paper Table 3, p1 column):");
    let baseline = pipeline.baseline();
    println!("  Ins  : {baseline}");
    for kind in racellm::llm::ModelKind::ALL {
        let c = pipeline.detection(kind, racellm::llm::PromptStrategy::P1);
        println!("  {:4} : {c}", kind.short());
    }
}
