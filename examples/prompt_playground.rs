//! Prompt playground: render every prompt strategy for one benchmark and
//! show each model's raw response plus what the parser extracts — the
//! §4.5 "natural language output processing" pipeline made visible.
//!
//!     cargo run --release -p racellm --example prompt_playground [kernel_id]

use racellm::{drb_ml, eval, llm};

fn main() {
    let id: u32 = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(1);
    let views = drb_ml::Dataset::generate().subset_views();
    let view = views.iter().find(|v| v.id == id).unwrap_or(&views[0]).clone();
    println!("Kernel SRB{:03} (race = {}):\n{}\n", view.id, view.race, view.trimmed_code);

    for strategy in [
        llm::PromptStrategy::P1,
        llm::PromptStrategy::P2,
        llm::PromptStrategy::P3,
        llm::PromptStrategy::Bp2,
    ] {
        println!("================ strategy {} ================", strategy.label());
        let prompts = drb_ml::render(strategy, &view.trimmed_code);
        println!("prompt turn 1 (first 160 chars):\n  {}…\n", &prompts[0][..160.min(prompts[0].len())]);

        for kind in llm::ModelKind::ALL {
            let s = llm::Surrogate::new(kind, &views);
            let mut chat = llm::ChatSession::new(&s, &view, strategy);
            let mut last = String::new();
            for p in &prompts {
                last = chat.send(p);
            }
            let verdict = eval::parse_verdict(&last);
            let pairs = eval::parse_pairs(&last);
            println!("{:4} → {verdict:?} | pairs: {}", kind.short(), pairs.is_some());
            println!("     {last}");
        }
        println!();
    }
}
