//! Export the DRB-ML dataset as the paper describes it: 201 JSON files
//! with the Table-1 schema, plus fine-tuning prompt–response pairs.
//!
//!     cargo run --release -p racellm --example dataset_export [out_dir]

use racellm::drb_ml::{detection_pair, varid_pair, Dataset};
use std::path::PathBuf;

fn main() {
    let out: PathBuf = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("drb-ml"));

    let ds = Dataset::generate();
    ds.export_dir(&out).expect("writable output directory");

    let subset = ds.subset_4k();
    let (yes, no) = Dataset::label_counts(subset.iter().copied());
    println!("DRB-ML exported to {}", out.display());
    println!("  entries        : {}", ds.entries.len());
    println!("  ≤4k-token subset: {} ({yes} race-yes / {no} race-no)", subset.len());

    // Fine-tuning pairs (Listings 8 and 9).
    let det: Vec<_> = subset.iter().map(|e| detection_pair(e)).collect();
    let vid: Vec<_> = subset.iter().map(|e| varid_pair(e)).collect();
    std::fs::write(
        out.join("finetune_detection.json"),
        serde_json::to_string_pretty(&det).unwrap(),
    )
    .unwrap();
    std::fs::write(
        out.join("finetune_varid.json"),
        serde_json::to_string_pretty(&vid).unwrap(),
    )
    .unwrap();
    println!("  fine-tune pairs: {} detection + {} var-id", det.len(), vid.len());

    // Dataset statistics (the §3.2/§3.5 summary numbers).
    let st = racellm::drb_ml::stats(true);
    println!("\nSubset statistics:");
    println!("  positive share : {:.1}%", st.positive_share * 100.0);
    println!("  tokens min/med/max: {}/{}/{}", st.tokens_min, st.tokens_median, st.tokens_max);
    println!("  mean code_len  : {:.0} chars", st.code_len_mean);
    println!("  categories     : {}", st.per_category.len());

    // Show one entry like the paper's Listing 2.
    let sample = &ds.entries[0];
    println!("\nSample entry ({}):", sample.name);
    let mut shown = sample.clone();
    shown.drb_code = "…".into();
    shown.trimmed_code = "…".into();
    println!("{}", serde_json::to_string_pretty(&shown).unwrap());
}
