//! Tool shoot-out: static analyzer vs dynamic checker vs the four LLM
//! surrogates, per pattern category — the comparative study of §4.4.
//!
//!     cargo run --release -p racellm --example tool_shootout

use racellm::{drb_gen, drb_ml, eval, hbsan, llm, racecheck};
use std::collections::BTreeMap;

fn main() {
    let corpus = drb_gen::corpus();
    let views = drb_ml::Dataset::generate().subset_views();
    let gpt4 = llm::Surrogate::new(llm::ModelKind::Gpt4, &views);

    // category → (total, static ok, dynamic ok, gpt4 ok)
    let mut per_cat: BTreeMap<&'static str, (u32, u32, u32, u32)> = BTreeMap::new();

    for v in &views {
        let k = corpus.iter().find(|k| k.id == v.id).unwrap();
        let stat = racecheck::check_source(&k.trimmed_code).unwrap().has_race();
        let unit = racellm::minic::parse(&k.trimmed_code).unwrap();
        let dyn_ = hbsan::check_adversarial(&unit, &hbsan::Config::default(), &[1, 7])
            .map(|r| r.has_race())
            .unwrap_or(false);
        let llm_ = gpt4.predict(v, llm::PromptStrategy::P1);
        let e = per_cat.entry(k.category.as_str()).or_default();
        e.0 += 1;
        e.1 += u32::from(stat == k.race);
        e.2 += u32::from(dyn_ == k.race);
        e.3 += u32::from(llm_ == k.race);
    }

    println!("Accuracy by kernel category (198-entry subset):\n");
    println!("{:<18} {:>5} {:>8} {:>8} {:>8}", "category", "n", "static", "dynamic", "GPT4");
    for (cat, (n, s, d, l)) in &per_cat {
        println!(
            "{:<18} {:>5} {:>7.0}% {:>7.0}% {:>7.0}%",
            cat,
            n,
            100.0 * *s as f64 / *n as f64,
            100.0 * *d as f64 / *n as f64,
            100.0 * *l as f64 / *n as f64,
        );
    }

    println!("\nOverall:");
    println!("  static : {}", eval::run_baseline(&views));
    let (c, _) = eval::run_detection(&gpt4, llm::PromptStrategy::P1, &views);
    println!("  GPT-4  : {c}");
}
